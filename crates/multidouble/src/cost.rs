//! Operation-cost accounting: how many double precision operations one
//! multiple double operation performs.
//!
//! The paper's Table 1 tallies the CAMPARY operation counts and uses them
//! as multipliers to convert kernel operation counts into flop totals
//! ("for every kernel … a small function accumulates the number of
//! arithmetical operations … using the numbers in Table 1 as multipliers").
//! [`CostModel::Paper`] reproduces those numbers; [`CostModel::Measured`]
//! holds the counts measured by instrumenting *this* crate's algorithms
//! (see [`crate::count`]); the difference is dominated by FMA-based
//! `two_prod` (2 ops) versus the Dekker split (17 ops) the CAMPARY tallies
//! assume.

use crate::real::MdReal;

/// Double-precision operation total per multiple double operation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpCost {
    /// Flops per addition (the paper's "add" Σ row).
    pub add: f64,
    /// Flops per subtraction (Table 1 folds this into "add").
    pub sub: f64,
    /// Flops per multiplication.
    pub mul: f64,
    /// Flops per division.
    pub div: f64,
    /// Flops per square root (not tabulated by the paper; estimated as
    /// two divisions — square roots appear once per Householder column).
    pub sqrt: f64,
}

impl OpCost {
    /// Average of add, mul and div Σ values — the paper's headline
    /// overhead predictor (37.7, 439.3, 2379.0).
    pub fn average(&self) -> f64 {
        (self.add + self.mul + self.div) / 3.0
    }
}

/// Raw counts of multiple double operations accumulated by a kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpCounts {
    /// Number of multiple double additions.
    pub add: u64,
    /// Number of multiple double subtractions.
    pub sub: u64,
    /// Number of multiple double multiplications.
    pub mul: u64,
    /// Number of multiple double divisions.
    pub div: u64,
    /// Number of multiple double square roots.
    pub sqrt: u64,
}

impl OpCounts {
    /// No operations.
    pub const ZERO: OpCounts = OpCounts {
        add: 0,
        sub: 0,
        mul: 0,
        div: 0,
        sqrt: 0,
    };

    /// Total double precision flops under a cost table.
    pub fn flops(&self, c: &OpCost) -> f64 {
        self.add as f64 * c.add
            + self.sub as f64 * c.sub
            + self.mul as f64 * c.mul
            + self.div as f64 * c.div
            + self.sqrt as f64 * c.sqrt
    }

    /// Total number of multiple double operations.
    pub fn total_ops(&self) -> u64 {
        self.add + self.sub + self.mul + self.div + self.sqrt
    }

    /// Elementwise sum.
    pub fn merged(&self, o: &OpCounts) -> OpCounts {
        OpCounts {
            add: self.add + o.add,
            sub: self.sub + o.sub,
            mul: self.mul + o.mul,
            div: self.div + o.div,
            sqrt: self.sqrt + o.sqrt,
        }
    }

    /// Scale all counts (e.g. per-thread counts by thread count).
    pub fn scaled(&self, k: u64) -> OpCounts {
        OpCounts {
            add: self.add * k,
            sub: self.sub * k,
            mul: self.mul * k,
            div: self.div * k,
            sqrt: self.sqrt * k,
        }
    }
}

impl core::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(self, o: OpCounts) -> OpCounts {
        self.merged(&o)
    }
}
impl core::ops::AddAssign for OpCounts {
    fn add_assign(&mut self, o: OpCounts) {
        *self = self.merged(&o);
    }
}

/// Which set of multipliers converts op counts to flops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostModel {
    /// The paper's Table 1 (CAMPARY tallies, Dekker-split `two_prod`).
    /// All experiment tables use this model, as the paper does.
    Paper,
    /// Counts measured by instrumenting this crate's algorithms with
    /// FMA-based `two_prod` (see `count::measure_real_costs`).
    Measured,
}

impl CostModel {
    /// The cost table for a real scalar with `limbs` doubles.
    pub fn real_cost(&self, limbs: usize) -> OpCost {
        match self {
            CostModel::Paper => paper_real_cost(limbs),
            CostModel::Measured => crate::count::measured_real_cost(limbs),
        }
    }
}

/// The paper's Table 1, Σ column (sqrt estimated as two divisions).
pub fn paper_real_cost(limbs: usize) -> OpCost {
    match limbs {
        1 => OpCost {
            add: 1.0,
            sub: 1.0,
            mul: 1.0,
            div: 1.0,
            sqrt: 1.0,
        },
        2 => OpCost {
            add: 20.0,
            sub: 20.0,
            mul: 23.0,
            div: 70.0,
            sqrt: 140.0,
        },
        4 => OpCost {
            add: 89.0,
            sub: 89.0,
            mul: 336.0,
            div: 893.0,
            sqrt: 1786.0,
        },
        8 => OpCost {
            add: 269.0,
            sub: 269.0,
            mul: 1742.0,
            div: 5126.0,
            sqrt: 10252.0,
        },
        _ => panic!("unsupported limb count {limbs}"),
    }
}

/// Cost table for a scalar that may be complex: complex operations are
/// expressed in real multiple double operations, then expanded.
///
/// * complex add = 2 real adds
/// * complex mul = 4 real muls + 1 add + 1 sub
/// * complex div = mul by conjugate + norm (2 mul, 1 add) + 2 real divs
/// * complex sqrt ≈ 1 real sqrt + 2 real divs + 2 adds (only used for
///   moduli in Householder vectors, never on the hot path)
pub fn complex_cost(real: OpCost) -> OpCost {
    OpCost {
        add: 2.0 * real.add,
        sub: 2.0 * real.sub,
        mul: 4.0 * real.mul + real.add + real.sub,
        div: 6.0 * real.mul + 2.0 * real.add + real.sub + 2.0 * real.div,
        sqrt: real.sqrt + 2.0 * real.div + 2.0 * real.add,
    }
}

/// The predicted cost overhead of doubling the precision, from the Table 1
/// averages: 439.3 / 37.7 ≈ 11.7 (2d → 4d) and 2379.0 / 439.3 ≈ 5.4
/// (4d → 8d). Exposed for the Figure 1 commentary in the bench harness.
pub fn predicted_overhead_factor(from_limbs: usize, to_limbs: usize) -> f64 {
    paper_real_cost(to_limbs).average() / paper_real_cost(from_limbs).average()
}

/// Convenience: the paper cost table for any [`MdReal`].
pub fn paper_cost_of<T: MdReal>() -> OpCost {
    paper_real_cost(T::LIMBS)
}

/// Measured (FMA-convention) cost table for a real precision, cached —
/// instrumented measurement runs once per process per precision.
pub fn measured_real_cost_cached(limbs: usize) -> OpCost {
    use std::sync::OnceLock;
    static CACHE: [OnceLock<OpCost>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    let slot = match limbs {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => panic!("unsupported limb count {limbs}"),
    };
    *CACHE[slot].get_or_init(|| crate::count::measured_real_cost(limbs))
}

/// Per-scalar cost description used by the scalar trait.
#[derive(Clone, Copy, Debug)]
pub struct ScalarCost {
    /// Doubles per scalar (limb planes; ×2 for complex).
    pub planes: usize,
    /// Cost under the paper model.
    pub paper: OpCost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sums_and_averages() {
        // Table 1 Σ rows and their stated averages.
        let dd = paper_real_cost(2);
        assert_eq!((dd.add, dd.mul, dd.div), (20.0, 23.0, 70.0));
        assert!((dd.average() - 37.666).abs() < 0.1); // paper rounds to 37.7

        let qd = paper_real_cost(4);
        assert_eq!((qd.add, qd.mul, qd.div), (89.0, 336.0, 893.0));
        assert!((qd.average() - 439.333).abs() < 0.1); // paper: 439.3

        let od = paper_real_cost(8);
        assert_eq!((od.add, od.mul, od.div), (269.0, 1742.0, 5126.0));
        assert!((od.average() - 2379.0).abs() < 0.1);
    }

    #[test]
    fn predicted_overheads_match_paper() {
        let f24 = predicted_overhead_factor(2, 4);
        let f48 = predicted_overhead_factor(4, 8);
        assert!((f24 - 11.7).abs() < 0.05, "2d->4d predicted {f24}");
        assert!((f48 - 5.4).abs() < 0.05, "4d->8d predicted {f48}");
    }

    #[test]
    fn counts_expand_to_flops() {
        let c = OpCounts {
            add: 10,
            sub: 0,
            mul: 10,
            div: 1,
            sqrt: 0,
        };
        let flops = c.flops(&paper_real_cost(4));
        assert_eq!(flops, 10.0 * 89.0 + 10.0 * 336.0 + 893.0);
    }

    #[test]
    fn complex_mul_cost_is_about_4x() {
        let r = paper_real_cost(2);
        let c = complex_cost(r);
        assert!(c.mul / r.mul > 4.0 && c.mul / r.mul < 6.5);
    }
}
