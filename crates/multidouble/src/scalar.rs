//! [`MdScalar`]: the scalar abstraction the linear algebra and kernel
//! crates are generic over.
//!
//! Eight instantiations cover the paper's experiment grid:
//! `{f64, Dd, Qd, Od}` (real) and `Complex<{f64, Dd, Qd, Od}>`.

use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::complex::Complex;
use crate::cost::{complex_cost, paper_real_cost, OpCost};
use crate::random::{rand_complex, rand_real};
use crate::real::MdReal;

/// A real or complex multiple double scalar.
///
/// `PLANES` is the number of `f64` *limb planes* in the staggered device
/// representation: `LIMBS` for real scalars, `2 * LIMBS` for complex ones
/// (real and imaginary parts are stored separately, each staggered by
/// significance — the paper's layout at the end of its Algorithm 1).
pub trait MdScalar:
    Copy
    + Clone
    + Default
    + PartialEq
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// The underlying real precision.
    type Real: MdReal;

    /// Number of `f64` planes per scalar.
    const PLANES: usize;
    /// Whether the scalar is complex.
    const IS_COMPLEX: bool;
    /// Bytes per scalar in device storage.
    const BYTES: usize;
    /// Human-readable tag, e.g. `"2d"` or `"complex 2d"`.
    const TAG: &'static str;

    /// Lift a real value.
    fn from_real(r: Self::Real) -> Self;
    /// Exact conversion from a double.
    fn from_f64(x: f64) -> Self {
        Self::from_real(<Self::Real as MdReal>::from_f64(x))
    }
    /// Additive identity.
    fn zero() -> Self {
        Self::from_real(<Self::Real as MdReal>::zero())
    }
    /// Multiplicative identity.
    fn one() -> Self {
        Self::from_real(<Self::Real as MdReal>::one())
    }
    /// `true` if exactly zero.
    fn is_zero(self) -> bool {
        self == Self::zero()
    }

    /// Conjugate (identity for real scalars).
    fn conj(self) -> Self;
    /// Real part.
    fn re(self) -> Self::Real;
    /// Imaginary part (zero for real scalars).
    fn im(self) -> Self::Real;
    /// `|x|^2` as a real number.
    fn norm_sqr(self) -> Self::Real;
    /// `|x|` as a real number.
    fn abs_val(self) -> Self::Real {
        self.norm_sqr().sqrt()
    }
    /// Multiply by a real factor.
    fn scale(self, s: Self::Real) -> Self;
    /// Divide by a real factor.
    fn unscale(self, s: Self::Real) -> Self;

    /// Read plane `p` of the scalar (real limbs first, then imaginary).
    fn plane(self, p: usize) -> f64;
    /// Rebuild from planes (`planes.len() == PLANES`).
    fn from_planes(planes: &[f64]) -> Self;

    /// Paper-model cost table (Table 1, complex-expanded when needed).
    fn paper_cost() -> OpCost;

    /// Measured (FMA-convention) cost table for this scalar — what the
    /// simulated hardware actually executes. The timing model uses this;
    /// the reported gigaflops use [`MdScalar::paper_cost`], exactly as the
    /// paper divides Table 1 flops by observed time.
    fn measured_cost() -> OpCost;

    /// Uniform random value (components in `[-1, 1]`, all limbs random).
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl<T: MdReal> MdScalar for T {
    type Real = T;
    const PLANES: usize = T::LIMBS;
    const IS_COMPLEX: bool = false;
    const BYTES: usize = T::LIMBS * 8;
    const TAG: &'static str = T::TAG;

    #[inline(always)]
    fn from_real(r: T) -> Self {
        r
    }
    #[inline(always)]
    fn conj(self) -> Self {
        self
    }
    #[inline(always)]
    fn re(self) -> T {
        self
    }
    #[inline(always)]
    fn im(self) -> T {
        T::zero()
    }
    #[inline(always)]
    fn norm_sqr(self) -> T {
        self * self
    }
    #[inline(always)]
    fn abs_val(self) -> T {
        MdReal::abs(self)
    }
    #[inline(always)]
    fn scale(self, s: T) -> Self {
        self * s
    }
    #[inline(always)]
    fn unscale(self, s: T) -> Self {
        self / s
    }
    #[inline(always)]
    fn plane(self, p: usize) -> f64 {
        self.limb(p)
    }
    #[inline(always)]
    fn from_planes(planes: &[f64]) -> Self {
        T::from_limbs(planes)
    }
    fn paper_cost() -> OpCost {
        paper_real_cost(T::LIMBS)
    }
    fn measured_cost() -> OpCost {
        crate::cost::measured_real_cost_cached(T::LIMBS)
    }
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rand_real(rng)
    }
}

impl<T: MdReal> MdScalar for Complex<T> {
    type Real = T;
    const PLANES: usize = 2 * T::LIMBS;
    const IS_COMPLEX: bool = true;
    const BYTES: usize = 2 * T::LIMBS * 8;
    const TAG: &'static str = match T::LIMBS {
        1 => "complex 1d",
        2 => "complex 2d",
        4 => "complex 4d",
        8 => "complex 8d",
        _ => "complex",
    };

    #[inline(always)]
    fn from_real(r: T) -> Self {
        Complex::from_real(r)
    }
    #[inline(always)]
    fn conj(self) -> Self {
        Complex::conj(self)
    }
    #[inline(always)]
    fn re(self) -> T {
        self.re
    }
    #[inline(always)]
    fn im(self) -> T {
        self.im
    }
    #[inline(always)]
    fn norm_sqr(self) -> T {
        Complex::norm_sqr(self)
    }
    #[inline(always)]
    fn scale(self, s: T) -> Self {
        Complex::scale(self, s)
    }
    #[inline(always)]
    fn unscale(self, s: T) -> Self {
        Complex::new(self.re / s, self.im / s)
    }
    #[inline(always)]
    fn plane(self, p: usize) -> f64 {
        if p < T::LIMBS {
            self.re.limb(p)
        } else {
            self.im.limb(p - T::LIMBS)
        }
    }
    #[inline(always)]
    fn from_planes(planes: &[f64]) -> Self {
        Complex::new(
            T::from_limbs(&planes[..T::LIMBS]),
            T::from_limbs(&planes[T::LIMBS..]),
        )
    }
    fn paper_cost() -> OpCost {
        complex_cost(paper_real_cost(T::LIMBS))
    }
    fn measured_cost() -> OpCost {
        complex_cost(crate::cost::measured_real_cost_cached(T::LIMBS))
    }
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rand_complex(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd::Dd;
    use crate::od::Od;
    use crate::qd::Qd;

    fn plane_roundtrip<S: MdScalar>(x: S) {
        let planes: Vec<f64> = (0..S::PLANES).map(|p| x.plane(p)).collect();
        assert_eq!(S::from_planes(&planes), x);
    }

    #[test]
    fn plane_roundtrips_all_scalars() {
        plane_roundtrip(2.5f64);
        plane_roundtrip(Dd::PI);
        plane_roundtrip(Qd::PI);
        plane_roundtrip(Od::pi());
        plane_roundtrip(Complex::new(1.5f64, -2.5));
        plane_roundtrip(Complex::new(Dd::PI, Dd::from_f64(-1.0)));
        plane_roundtrip(Complex::new(Qd::PI, Qd::from_f64(0.25)));
        plane_roundtrip(Complex::new(Od::pi(), Od::from_f64(-0.125)));
    }

    #[test]
    fn plane_counts() {
        assert_eq!(<f64 as MdScalar>::PLANES, 1);
        assert_eq!(<Dd as MdScalar>::PLANES, 2);
        assert_eq!(<Complex<Qd> as MdScalar>::PLANES, 8);
        assert_eq!(<Complex<Od> as MdScalar>::BYTES, 128);
    }

    #[test]
    fn real_scalar_norms() {
        let x = Dd::from_f64(-3.0);
        assert_eq!(MdScalar::norm_sqr(x).to_f64(), 9.0);
        assert_eq!(MdScalar::abs_val(x).to_f64(), 3.0);
        assert_eq!(MdScalar::conj(x), x);
    }

    #[test]
    fn complex_scalar_norms() {
        let z = Complex::new(Qd::from_f64(3.0), Qd::from_f64(4.0));
        assert_eq!(MdScalar::norm_sqr(z).to_f64(), 25.0);
        assert_eq!(MdScalar::abs_val(z).to_f64(), 5.0);
    }

    #[test]
    fn tags() {
        assert_eq!(<Complex<Dd> as MdScalar>::TAG, "complex 2d");
        assert_eq!(<Qd as MdScalar>::TAG, "4d");
    }
}
