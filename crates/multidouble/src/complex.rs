//! Complex numbers over any [`MdReal`] scalar.
//!
//! The paper's Table 5 evaluates the blocked Householder QR on complex
//! double double matrices; on complex data the transpose in the WY update
//! formulas becomes the Hermitian transpose. Real and imaginary parts are
//! kept as separate limb planes in device storage, matching the paper's
//! staggered representation ("this representation naturally extends to
//! complex arrays, where the real and imaginary parts are kept separately").

use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::real::MdReal;

/// A complex number with components of type `T`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: MdReal> Complex<T> {
    /// Build from parts.
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// The complex zero.
    #[inline]
    pub fn zero() -> Self {
        Complex {
            re: T::zero(),
            im: T::zero(),
        }
    }

    /// The complex one.
    #[inline]
    pub fn one() -> Self {
        Complex {
            re: T::one(),
            im: T::zero(),
        }
    }

    /// The imaginary unit.
    #[inline]
    pub fn i() -> Self {
        Complex {
            re: T::zero(),
            im: T::one(),
        }
    }

    /// Purely real value.
    #[inline]
    pub fn from_real(re: T) -> Self {
        Complex { re, im: T::zero() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// `|z|^2 = re^2 + im^2` (a real number).
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse: `conj(z) / |z|^2`.
    #[inline]
    pub fn recip(self) -> Self {
        let n = self.norm_sqr();
        Complex {
            re: self.re / n,
            im: -self.im / n,
        }
    }
}

impl<T: MdReal> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, r: Self) -> Self {
        Complex {
            re: self.re + r.re,
            im: self.im + r.im,
        }
    }
}
impl<T: MdReal> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, r: Self) -> Self {
        Complex {
            re: self.re - r.re,
            im: self.im - r.im,
        }
    }
}
impl<T: MdReal> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, r: Self) -> Self {
        Complex {
            re: self.re * r.re - self.im * r.im,
            im: self.re * r.im + self.im * r.re,
        }
    }
}
impl<T: MdReal> Div for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn div(self, r: Self) -> Self {
        let n = r.norm_sqr();
        let p = self * r.conj();
        Complex {
            re: p.re / n,
            im: p.im / n,
        }
    }
}
impl<T: MdReal> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<T: MdReal> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, r: Self) {
        *self = *self + r;
    }
}
impl<T: MdReal> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, r: Self) {
        *self = *self - r;
    }
}
impl<T: MdReal> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, r: Self) {
        *self = *self * r;
    }
}
impl<T: MdReal> DivAssign for Complex<T> {
    #[inline(always)]
    fn div_assign(&mut self, r: Self) {
        *self = *self / r;
    }
}

impl<T: MdReal> core::fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.im < T::zero() {
            write!(f, "{} - {}i", self.re, self.im.abs())
        } else {
            write!(f, "{} + {}i", self.re, self.im)
        }
    }
}

impl<T: MdReal> From<T> for Complex<T> {
    #[inline]
    fn from(re: T) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd::Dd;
    use crate::qd::Qd;

    #[test]
    fn mul_of_units() {
        let i = Complex::<f64>::i();
        assert_eq!(i * i, -Complex::one());
    }

    #[test]
    fn conj_mul_is_norm() {
        let z = Complex::new(Dd::from_f64(3.0), Dd::from_f64(4.0));
        let n = z * z.conj();
        assert_eq!(n.re.to_f64(), 25.0);
        assert_eq!(n.im.to_f64(), 0.0);
        assert_eq!(z.abs().to_f64(), 5.0);
    }

    #[test]
    fn div_roundtrip_qd() {
        let z = Complex::new(Qd::PI, Qd::from_f64(1.25));
        let w = Complex::new(Qd::from_f64(-0.5), Qd::from_f64(2.0));
        let q = (z * w) / w;
        let err = ((q - z).norm_sqr()).sqrt().to_f64();
        assert!(err < 64.0 * Qd::EPSILON, "err = {err:e}");
    }

    #[test]
    fn recip_agrees_with_div() {
        let z = Complex::new(Dd::from_f64(1.5), Dd::from_f64(-2.5));
        let a = Complex::<Dd>::one() / z;
        let b = z.recip();
        let err = (a - b).norm_sqr().sqrt().to_f64();
        assert!(err < 8.0 * Dd::EPSILON);
    }
}
