//! Error-free transformations: the building blocks of every multiple double
//! operation.
//!
//! Each function returns a pair `(s, e)` such that the exact real-number
//! result equals `s + e`, with `s` the correctly rounded double result.
//! References: Knuth TAOCP vol. 2; Dekker 1971; the QDlib `inline.h`
//! primitives of Hida, Li and Bailey; and chapter 4 of the *Handbook of
//! Floating-Point Arithmetic* (the paper's reference \[19\]).

use crate::fp::Fp;

/// Exact sum of two doubles, no magnitude precondition. 6 operations.
#[inline(always)]
pub fn two_sum<F: Fp>(a: F, b: F) -> (F, F) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Exact sum assuming `|a| >= |b|` (or `a == 0`). 3 operations.
#[inline(always)]
pub fn quick_two_sum<F: Fp>(a: F, b: F) -> (F, F) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Exact difference of two doubles. 6 operations.
#[inline(always)]
pub fn two_diff<F: Fp>(a: F, b: F) -> (F, F) {
    let s = a - b;
    let bb = s - a;
    let e = (a - (s - bb)) - (b + bb);
    (s, e)
}

/// Exact difference assuming `|a| >= |b|`. 3 operations.
#[inline(always)]
pub fn quick_two_diff<F: Fp>(a: F, b: F) -> (F, F) {
    let s = a - b;
    let e = (a - s) - b;
    (s, e)
}

/// Exact product with error term; delegates to the `Fp` implementation
/// (FMA by default, Dekker split for the paper-style counting type).
#[inline(always)]
pub fn two_prod<F: Fp>(a: F, b: F) -> (F, F) {
    a.two_prod(b)
}

/// Exact square with error term.
#[inline(always)]
pub fn two_sqr<F: Fp>(a: F) -> (F, F) {
    let p = a * a;
    let e = a.mul_add(a, -p);
    (p, e)
}

/// Sum of three doubles, returning `(s, e1, e2)` with
/// `a + b + c == s + e1 + e2` exactly (QDlib `three_sum`).
#[inline(always)]
pub fn three_sum<F: Fp>(a: F, b: F, c: F) -> (F, F, F) {
    let (t1, t2) = two_sum(a, b);
    let (s, t3) = two_sum(c, t1);
    let (e1, e2) = two_sum(t2, t3);
    (s, e1, e2)
}

/// Sum of three doubles with a single folded error term
/// (QDlib `three_sum2`): `a + b + c ≈ s + e`.
#[inline(always)]
pub fn three_sum2<F: Fp>(a: F, b: F, c: F) -> (F, F) {
    let (t1, t2) = two_sum(a, b);
    let (s, t3) = two_sum(c, t1);
    (s, t2 + t3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_captures_the_rounding_error() {
        let a = 1.0e16;
        let b = 3.0; // a + b rounds: ulp(a) = 2, so fl(a+b) = a + 4
        let (s, e) = two_sum(a, b);
        assert_eq!(s, a + b); // s is the rounded sum
        assert_eq!(s, 1.0000000000000004e16);
        assert_eq!(e, -1.0); // and e recovers the exact total
    }

    #[test]
    fn quick_two_sum_matches_two_sum_when_ordered() {
        let cases = [(1.0e10, 3.5), (2.0, 2.0), (-7.0e8, 1.25e-3), (5.0, 0.0)];
        for (a, b) in cases {
            let (s1, e1) = two_sum(a, b);
            let (s2, e2) = quick_two_sum(a, b);
            assert_eq!(s1, s2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn two_diff_is_exact() {
        let a = 1.0 + 2f64.powi(-52);
        let b = 2f64.powi(-60);
        let (s, e) = two_diff(a, b);
        // reconstruct in higher precision: s + e == a - b exactly
        // (verify via two_sum of s and e against the components)
        let (r, r2) = two_sum(s, e);
        let (q, q2) = two_sum(a, -b);
        assert_eq!((r, r2), (q, q2));
    }

    #[test]
    fn three_sum_preserves_the_sum() {
        let (a, b, c) = (1.0e16, 3.0, -1.0e16);
        let (s, e1, e2) = three_sum(a, b, c);
        assert_eq!(s + e1 + e2, 3.0);
    }
}
