//! A small dependency-free JSON reader, enough to validate exported
//! traces: full object/array/string/number/bool/null grammar, no
//! streaming, values held as an owned tree.
//!
//! This is a *reader* for smoke tests and examples — the exporter in
//! [`crate::trace`] writes its JSON directly and never round-trips
//! through this type.

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order preserved; duplicate keys keep their first value.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` on any other variant.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        // surrogate pairs are not expected in our own
                        // traces; map lone surrogates to the
                        // replacement character instead of failing
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (multi-byte safe)
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let doc = r#"{"a":[1,2.5,-3e2,true,false,null],"b":{"c":"x\ny"},"d":""}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("d").and_then(Json::as_str), Some(""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_and_unicode_are_fine() {
        let v = parse(" {\n\t\"k\" : \"π≈3\" }\r\n").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some("π≈3"));
    }
}
