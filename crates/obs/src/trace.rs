//! Chrome-trace-format export: render a recorded event stream as a
//! JSON document that `chrome://tracing` and Perfetto open natively.
//!
//! Each pool device becomes a trace *process* (named from its
//! [`Event::Device`] event) with two *threads* — track `prep` (tid 0)
//! for the host/prep lane and track `compute` (tid 1) for the device
//! lane. Stage bookings render as duration slices on both lanes, plan
//! spans as compute slices, and refunds / holds / extensions /
//! deadline misses / gap fills / compactions as instant markers, so a
//! staged schedule's overlap and reclaimed holes are visually
//! inspectable. The pool-wide host staging workers render as one extra
//! process ([`STAGING_PID`]) with a thread per worker, carrying every
//! prep interval booked through the shared host resource.
//!
//! Timestamps: the pool's simulated milliseconds map to the trace's
//! microseconds (×1000), preserving sub-millisecond stage structure.

use crate::json::{self, Json};
use crate::{Event, StageKind};

/// Prep-lane (host) thread id within each device's process.
pub const TID_PREP: u64 = 0;
/// Compute-lane (device) thread id within each device's process.
pub const TID_COMPUTE: u64 = 1;
/// Trace process id of the pool-wide host staging workers (one thread
/// per worker). Far above any real device id so the processes never
/// collide.
pub const STAGING_PID: usize = 0xff00;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(ms: f64) -> f64 {
    ms * 1.0e3
}

/// One trace event line (without the surrounding array punctuation).
struct Lines(Vec<String>);

impl Lines {
    fn meta(&mut self, pid: usize, tid: Option<u64>, what: &str, name: &str) {
        let tid = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
        self.0.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},{tid}\"name\":\"{what}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    fn slice(&mut self, pid: usize, tid: u64, name: &str, start_ms: f64, end_ms: f64, args: &str) {
        if end_ms <= start_ms {
            return; // zero-width interval: nothing to draw
        }
        self.0.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\
             \"name\":\"{}\",\"args\":{{{args}}}}}",
            us(start_ms),
            us(end_ms - start_ms),
            esc(name)
        ));
    }

    fn instant(&mut self, pid: usize, tid: u64, name: &str, at_ms: f64, args: &str) {
        self.0.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
             \"name\":\"{}\",\"args\":{{{args}}}}}",
            us(at_ms),
            esc(name)
        ));
    }
}

fn stage_name(kind: StageKind, rung: &str) -> String {
    format!("{} {rung}", kind.label())
}

/// Render `events` as a complete Chrome-trace JSON document.
///
/// Devices that never appear in a [`Event::Device`] announcement are
/// still rendered (their slices imply the process) but keep numeric
/// names; attach the observer before running to get model names.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut lines = Lines(Vec::with_capacity(events.len() + 8));
    // process + thread naming first: one process per announced device,
    // one named thread per lane — "one track per device lane"
    let mut announced: Vec<(usize, &str)> = Vec::new();
    for ev in events {
        if let Event::Device { device, name } = ev {
            if !announced.iter().any(|(d, _)| d == device) {
                announced.push((*device, name));
            }
        }
    }
    for &(device, name) in &announced {
        lines.meta(device, None, "process_name", &format!("gpu{device} {name}"));
        lines.meta(device, Some(TID_PREP), "thread_name", "prep");
        lines.meta(device, Some(TID_COMPUTE), "thread_name", "compute");
    }
    // the host staging pool is its own process, one thread per worker
    let mut workers: Vec<usize> = Vec::new();
    for ev in events {
        let w = match ev {
            Event::StagingWorker { worker } => *worker,
            Event::StagingBooked { worker, .. } => *worker,
            _ => continue,
        };
        if !workers.contains(&w) {
            workers.push(w);
        }
    }
    if !workers.is_empty() {
        workers.sort_unstable();
        lines.meta(STAGING_PID, None, "process_name", "host staging");
        for &w in &workers {
            lines.meta(
                STAGING_PID,
                Some(w as u64),
                "thread_name",
                &format!("worker{w}"),
            );
        }
    }
    for ev in events {
        match *ev {
            Event::StageBooked {
                device,
                job,
                stage,
                kind,
                rung,
                host_start_ms,
                host_end_ms,
                dev_start_ms,
                dev_end_ms,
            } => {
                let args = format!("\"job\":{job},\"stage\":{stage}");
                lines.slice(
                    device,
                    TID_PREP,
                    &format!("{} prep", stage_name(kind, rung)),
                    host_start_ms,
                    host_end_ms,
                    &args,
                );
                lines.slice(
                    device,
                    TID_COMPUTE,
                    &stage_name(kind, rung),
                    dev_start_ms,
                    dev_end_ms,
                    &args,
                );
            }
            Event::PlanSpan {
                device,
                jobs,
                start_ms,
                end_ms,
            } => {
                lines.slice(
                    device,
                    TID_COMPUTE,
                    &format!("solve x{jobs}"),
                    start_ms,
                    end_ms,
                    &format!("\"jobs\":{jobs}"),
                );
            }
            Event::Refund {
                device,
                from_stage,
                freed_ms,
                refunded_ms,
                at_ms,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "refund",
                    at_ms,
                    &format!(
                        "\"from_stage\":{from_stage},\"freed_ms\":{freed_ms},\
                         \"refunded_ms\":{refunded_ms}"
                    ),
                );
            }
            Event::Held { device, until_ms } => {
                lines.instant(device, TID_PREP, "hold", until_ms, "");
            }
            Event::GapFilled {
                device,
                start_ms,
                lead_ms,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "gap fill",
                    start_ms,
                    &format!("\"lead_ms\":{lead_ms}"),
                );
            }
            Event::Compacted {
                device,
                at_ms,
                freed_ms,
                slid,
                slid_ms,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "compact",
                    at_ms,
                    &format!("\"freed_ms\":{freed_ms},\"slid\":{slid},\"slid_ms\":{slid_ms}"),
                );
            }
            Event::StagingBooked {
                worker,
                device,
                start_ms,
                end_ms,
            } => {
                lines.slice(
                    STAGING_PID,
                    worker as u64,
                    &format!("prep gpu{device}"),
                    start_ms,
                    end_ms,
                    &format!("\"device\":{device}"),
                );
            }
            Event::StagingWait {
                device,
                worker,
                wait_ms,
                at_ms,
            } => {
                lines.instant(
                    STAGING_PID,
                    worker as u64,
                    "staging wait",
                    at_ms,
                    &format!("\"device\":{device},\"wait_ms\":{wait_ms}"),
                );
            }
            Event::PassExtended {
                device,
                job,
                pass,
                end_ms,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "extend",
                    end_ms,
                    &format!("\"job\":{job},\"pass\":{pass}"),
                );
            }
            Event::FaultInjected {
                device,
                job,
                at_ms,
                retry,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "fault",
                    at_ms,
                    &format!("\"job\":{job},\"retry\":{retry}"),
                );
            }
            Event::DeviceLost {
                device,
                at_ms,
                interrupted,
                refund_ms,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "device lost",
                    at_ms,
                    &format!("\"interrupted\":{interrupted},\"refund_ms\":{refund_ms}"),
                );
            }
            Event::RetryBooked {
                device,
                job,
                end_ms,
                backoff_ms,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "retry",
                    end_ms,
                    &format!("\"job\":{job},\"backoff_ms\":{backoff_ms}"),
                );
            }
            Event::CircuitOpen {
                device,
                at_ms,
                faults,
            } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "circuit open",
                    at_ms,
                    &format!("\"faults\":{faults}"),
                );
            }
            Event::CircuitProbe { device, job, at_ms } => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "circuit probe",
                    at_ms,
                    &format!("\"job\":{job}"),
                );
            }
            Event::CircuitClose { device, at_ms } => {
                lines.instant(device, TID_COMPUTE, "circuit close", at_ms, "");
            }
            Event::JobSettled {
                job,
                device,
                end_ms,
                deadline_ms,
                has_deadline,
                ..
            } if has_deadline && end_ms > deadline_ms => {
                lines.instant(
                    device,
                    TID_COMPUTE,
                    "deadline miss",
                    end_ms,
                    &format!("\"job\":{job},\"late_ms\":{}", end_ms - deadline_ms),
                );
            }
            _ => {}
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", lines.0.join(",\n"))
}

/// Validate an exported trace: it must parse as JSON, contain a
/// `traceEvents` array, and name one `prep` and one `compute` track
/// for each of `devices` processes. Returns the number of duration
/// slices on success.
pub fn validate_trace(doc: &str, devices: usize) -> Result<usize, String> {
    let root = json::parse(doc)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array")?;
    let mut lanes = vec![[false, false]; devices];
    let mut slices = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        match ph {
            "M" if ev.get("name").and_then(Json::as_str) == Some("thread_name") => {
                let pid = ev
                    .get("pid")
                    .and_then(Json::as_f64)
                    .ok_or("M without pid")? as usize;
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_f64)
                    .ok_or("M without tid")? as u64;
                let lane = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or("thread_name without args.name")?;
                if pid == STAGING_PID {
                    if lane != format!("worker{tid}") {
                        return Err(format!("unexpected staging thread {lane:?}"));
                    }
                    continue;
                }
                if pid >= devices {
                    return Err(format!("track for unknown device {pid}"));
                }
                match (tid, lane) {
                    (TID_PREP, "prep") => lanes[pid][0] = true,
                    (TID_COMPUTE, "compute") => lanes[pid][1] = true,
                    other => return Err(format!("unexpected lane {other:?}")),
                }
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or("X without dur")?;
                if dur <= 0.0 {
                    return Err("non-positive slice duration".into());
                }
                slices += 1;
            }
            _ => {}
        }
    }
    for (d, [prep, compute]) in lanes.iter().enumerate() {
        if !prep || !compute {
            return Err(format!(
                "device {d} missing a lane track (prep={prep}, compute={compute})"
            ));
        }
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::Device {
                device: 0,
                name: "v100",
            },
            Event::Device {
                device: 1,
                name: "p100",
            },
            Event::StageBooked {
                device: 0,
                job: 7,
                stage: 0,
                kind: StageKind::Factor,
                rung: "d2",
                host_start_ms: 0.0,
                host_end_ms: 0.4,
                dev_start_ms: 0.4,
                dev_end_ms: 1.9,
            },
            Event::PlanSpan {
                device: 1,
                jobs: 3,
                start_ms: 0.0,
                end_ms: 2.5,
            },
            Event::Refund {
                device: 0,
                from_stage: 4,
                freed_ms: 0.7,
                refunded_ms: 0.7,
                at_ms: 1.9,
            },
        ]
    }

    #[test]
    fn export_round_trips_and_names_every_lane() {
        let doc = chrome_trace(&sample());
        let slices = validate_trace(&doc, 2).expect("trace must validate");
        assert_eq!(slices, 3, "factor prep + factor compute + plan span");
    }

    #[test]
    fn validation_catches_a_missing_lane() {
        // only device 0 announced: device 1's lanes are never named
        let evs: Vec<Event> = sample()
            .into_iter()
            .filter(|e| !matches!(e, Event::Device { device: 1, .. }))
            .collect();
        let doc = chrome_trace(&evs);
        assert!(validate_trace(&doc, 2).is_err());
        assert!(validate_trace(&doc, 1).is_ok());
    }

    #[test]
    fn staging_workers_render_as_their_own_process() {
        let doc = chrome_trace(&[
            Event::Device {
                device: 0,
                name: "v100",
            },
            Event::StagingWorker { worker: 0 },
            Event::StagingWorker { worker: 1 },
            Event::StagingBooked {
                worker: 1,
                device: 0,
                start_ms: 0.0,
                end_ms: 4.0,
            },
            Event::StagingWait {
                device: 0,
                worker: 1,
                wait_ms: 4.0,
                at_ms: 4.0,
            },
            Event::GapFilled {
                device: 0,
                start_ms: 2.0,
                lead_ms: 3.0,
            },
            Event::Compacted {
                device: 0,
                at_ms: 2.0,
                freed_ms: 3.0,
                slid: 1,
                slid_ms: 3.0,
            },
        ]);
        // 1 staging slice; instants don't count
        assert_eq!(validate_trace(&doc, 1).unwrap(), 1);
        assert!(doc.contains("host staging"));
        assert!(doc.contains("worker1"));
    }

    #[test]
    fn zero_width_intervals_draw_nothing() {
        let doc = chrome_trace(&[
            Event::Device {
                device: 0,
                name: "a100",
            },
            Event::StageBooked {
                device: 0,
                job: 0,
                stage: 2,
                kind: StageKind::Residual,
                rung: "d4",
                host_start_ms: 1.0,
                host_end_ms: 1.0, // zero-width prep share
                dev_start_ms: 1.0,
                dev_end_ms: 1.5,
            },
        ]);
        assert_eq!(validate_trace(&doc, 1).unwrap(), 1);
    }
}
