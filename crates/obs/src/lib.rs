//! # mdls-obs
//!
//! Event-based observability for the batched solve pipeline.
//!
//! The pipeline's planner, scheduler, pool and execution paths carry
//! optional emit points: with no observer attached they cost one
//! `Option` check and construct nothing — zero events, zero
//! allocation. Attach an [`Observer`] (usually a [`Recorder`]) and
//! every cache probe, SECT preview, stage booking, refund and job
//! settlement streams out as a flat [`Event`] value.
//!
//! Observability is **inert by contract**: observers only *read*
//! values the pipeline has already computed. Solutions are
//! bit-identical and simulated schedules timing-identical with or
//! without one attached (the workspace's `observability` test pins
//! this on every execution path).
//!
//! On top of a recorded event stream:
//!
//! * [`trace::chrome_trace`] renders the per-device prep/compute lanes
//!   as a Chrome-trace-format JSON (open in `chrome://tracing` or
//!   Perfetto) — stage overlap and refund holes become visible tracks;
//! * [`metrics::Metrics`] folds the stream into log-binned latency
//!   histograms (p50/p99/p999 by priority class), refund / extension /
//!   fusion / deadline-miss counters, and per-(shape, rung, device)
//!   predicted-vs-settled stage-time calibration records;
//! * [`json`] is a dependency-free JSON reader used to validate
//!   exported traces in smoke tests.

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod trace;

use std::sync::Mutex;

/// Which logical stage of an execution plan an interval belongs to.
///
/// Mirrors the pipeline's plan-IR stages without depending on the
/// pipeline crate: `Factor` is the one-time QR factorization, then
/// refinement alternates `Residual` (one rung up) and `Correct`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    Factor,
    Residual,
    Correct,
}

impl StageKind {
    /// Short lowercase label used in trace slice names and tables.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Factor => "factor",
            StageKind::Residual => "residual",
            StageKind::Correct => "correct",
        }
    }
}

/// One observation from the pipeline.
///
/// Events are `Copy` and carry only scalars and `'static` strings so
/// emitting one never allocates; anything aggregate (histograms,
/// tracks, calibration tables) is derived later from the recorded
/// stream by [`metrics`] and [`trace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A device joined the observed pool (emitted once per device when
    /// an observer is attached). Names the trace process for `device`.
    Device { device: usize, name: &'static str },
    /// The planner served a plan from its memo cache.
    PlanCacheHit {
        rows: usize,
        cols: usize,
        digits: u32,
    },
    /// The planner ran the full strategy search and cached the result.
    PlanCacheMiss {
        rows: usize,
        cols: usize,
        digits: u32,
    },
    /// How many ladder candidates the strategy search scored for a
    /// cache-missing shape before picking the cheapest.
    PlanCandidates {
        rows: usize,
        cols: usize,
        digits: u32,
        candidates: usize,
    },
    /// The fused-profile memo served a (shape, group) entry.
    FusedMemoHit {
        rows: usize,
        cols: usize,
        digits: u32,
        group: usize,
    },
    /// The fused-profile memo priced a new (shape, group) entry.
    FusedMemoMiss {
        rows: usize,
        cols: usize,
        digits: u32,
        group: usize,
    },
    /// The SECT dispatch policy previewed finishing a candidate job or
    /// group on `device` at `end_ms` (one event per device considered).
    SectPreview { device: usize, end_ms: f64 },
    /// The micro-batcher closed a fused group of `size` jobs for a
    /// shape whose occupancy-preferred size is `preferred`.
    GroupFormed {
        rows: usize,
        cols: usize,
        digits: u32,
        size: usize,
        preferred: usize,
    },
    /// A tight front-member deadline shrank a stream group from
    /// `preferred` to `cap` members to fit `slack_ms` of headroom.
    DeadlineCap {
        preferred: usize,
        cap: usize,
        slack_ms: f64,
    },
    /// One plan stage booked as a lane-split interval on `device`:
    /// `[host_start_ms, host_end_ms)` on the prep lane and
    /// `[dev_start_ms, dev_end_ms)` on the compute lane. `job` is the
    /// front job of the dispatch; `stage` its index in the plan.
    StageBooked {
        device: usize,
        job: u64,
        stage: usize,
        kind: StageKind,
        rung: &'static str,
        host_start_ms: f64,
        host_end_ms: f64,
        dev_start_ms: f64,
        dev_end_ms: f64,
    },
    /// A whole-plan (non-staged) commitment of `jobs` fused jobs on
    /// `device`'s compute lane.
    PlanSpan {
        device: usize,
        jobs: usize,
        start_ms: f64,
        end_ms: f64,
    },
    /// An online re-book freed `device`'s lanes from plan stage
    /// `from_stage`: `freed_ms` of booked wall clock came off the
    /// timelines (the booking's executed work ends at `at_ms`),
    /// `refunded_ms` off the busy accounting.
    Refund {
        device: usize,
        from_stage: usize,
        freed_ms: f64,
        refunded_ms: f64,
        at_ms: f64,
    },
    /// A busy-time-only refund (no cursor rewind) on `device`.
    Reconciled { device: usize, refund_ms: f64 },
    /// A booking landed (at least partly) in a mid-schedule timeline
    /// gap on `device` instead of at the tail: its earliest gap part
    /// starts at `start_ms`, `lead_ms` ahead of the pre-booking lane
    /// cursor.
    GapFilled {
        device: usize,
        start_ms: f64,
        lead_ms: f64,
    },
    /// A compacting re-book on `device` slid `slid` queued, unexecuted
    /// dispatches left into `freed_ms` of booked time freed at `at_ms`,
    /// improving their completion times by `slid_ms` in total.
    Compacted {
        device: usize,
        at_ms: f64,
        freed_ms: f64,
        slid: usize,
        slid_ms: f64,
    },
    /// A host staging worker joined the observed pool (emitted once per
    /// worker when an observer is attached). Names the staging trace
    /// thread for `worker`.
    StagingWorker { worker: usize },
    /// One prep interval booked on host staging `worker` on behalf of
    /// `device` — the pool-wide host resource view of a prep-lane span.
    StagingBooked {
        worker: usize,
        device: usize,
        start_ms: f64,
        end_ms: f64,
    },
    /// A booking on `device` started `wait_ms` later than its own prep
    /// lane allowed because every staging worker was busy; `worker` is
    /// the slot it eventually got, `at_ms` where it started.
    StagingWait {
        device: usize,
        worker: usize,
        wait_ms: f64,
        at_ms: f64,
    },
    /// `device`'s lanes were held to `until_ms` for a not-yet-arrived
    /// release time.
    Held { device: usize, until_ms: f64 },
    /// An adaptive job stalled above target and extended one
    /// correction pass past its plan (`pass` is 1-based); the extra
    /// residual/correct pair was booked ending at `end_ms`.
    PassExtended {
        device: usize,
        job: u64,
        pass: usize,
        end_ms: f64,
    },
    /// A job finished and its booking settled. `release_ms` is its
    /// arrival (0 for always-ready jobs); `deadline_ms` is only
    /// meaningful when `has_deadline`. `fused` is its group size;
    /// `tenant` is the submitting tenant (0 for single-tenant paths).
    JobSettled {
        job: u64,
        device: usize,
        tenant: u32,
        priority: i32,
        start_ms: f64,
        end_ms: f64,
        release_ms: f64,
        deadline_ms: f64,
        has_deadline: bool,
        fused: usize,
        corrections: usize,
        refunded_ms: f64,
        extended_ms: f64,
        achieved_digits: f64,
    },
    /// Predicted-vs-settled wall clock for one executed plan stage —
    /// the calibration signal for the cost model: `predicted_ms` is
    /// what the booking reserved, `settled_ms` what the profile
    /// replay measured.
    StageTime {
        device: usize,
        rows: usize,
        cols: usize,
        kind: StageKind,
        rung: &'static str,
        predicted_ms: f64,
        settled_ms: f64,
    },
    /// A seeded transient kernel fault struck `job`'s executed work on
    /// `device` at `at_ms`; `retry` is the 1-based replay this fault
    /// triggers (bounded by the recovery policy).
    FaultInjected {
        device: usize,
        job: u64,
        at_ms: f64,
        retry: usize,
    },
    /// `device` died stickily at `at_ms`: `interrupted` live bookings
    /// lost unexecuted work and `refund_ms` of booked-but-never-run
    /// wall clock was written off its busy accounting.
    DeviceLost {
        device: usize,
        at_ms: f64,
        interrupted: usize,
        refund_ms: f64,
    },
    /// Recovery booked a retry of `job` on `device` ending at `end_ms`
    /// after `backoff_ms` of modeled backoff (transient replay or
    /// post-loss re-dispatch).
    RetryBooked {
        device: usize,
        job: u64,
        end_ms: f64,
        backoff_ms: f64,
    },
    /// Admission shed `job`: no rung could meet `deadline_ms`; the best
    /// previewed completion was `predicted_end_ms`.
    JobShed {
        job: u64,
        deadline_ms: f64,
        predicted_end_ms: f64,
    },
    /// Admission down-laddered `job` from `from_digits` requested
    /// digits to a cheaper `to_digits` rung that fits its deadline.
    JobDegraded {
        job: u64,
        from_digits: u32,
        to_digits: u32,
    },
    /// `job` entered `tenant`'s bounded ingress queue; `queued` is the
    /// queue depth after the enqueue.
    TenantEnqueued {
        tenant: u32,
        job: u64,
        queued: usize,
    },
    /// A tenant-queue decision dropped `job` at `at_ms`; `reason` names
    /// the policy arm that fired (`"reject"` for a full queue under
    /// `Backpressure::Reject`, `"evict"` for the oldest job displaced
    /// under `ShedOldest`, `"overload"` for the degradation ladder).
    TenantShed {
        tenant: u32,
        job: u64,
        at_ms: f64,
        reason: &'static str,
    },
    /// `tenant`'s device-ms token bucket could not cover its next job:
    /// `needed_ms` predicted against `available_ms` of credit. Emitted
    /// once per dry spell, not per blocked dispatch attempt.
    QuotaExhausted {
        tenant: u32,
        at_ms: f64,
        needed_ms: f64,
        available_ms: f64,
    },
    /// `device`'s circuit breaker opened at `at_ms` after `faults`
    /// transient faults inside its sliding window: the device is
    /// quarantined (spans freed, no new dispatches) until a probe
    /// succeeds.
    CircuitOpen {
        device: usize,
        at_ms: f64,
        faults: usize,
    },
    /// The breaker's backoff elapsed and one probe job (`job`) was
    /// dispatched onto quarantined `device` at `at_ms`.
    CircuitProbe { device: usize, job: u64, at_ms: f64 },
    /// `device`'s probe ran clean at `at_ms`: the breaker closed and
    /// the device rejoined the dispatch candidate set.
    CircuitClose { device: usize, at_ms: f64 },
}

/// A sink for pipeline [`Event`]s.
///
/// Implementations must be cheap and side-effect-free with respect to
/// the pipeline: `on_event` is called inline from planning, dispatch
/// and settlement (possibly from several worker threads at once), and
/// nothing it does may feed back into scheduling or numerics.
pub trait Observer: Send + Sync {
    fn on_event(&self, ev: &Event);
}

/// The standard observer: records every event in arrival order behind
/// a mutex, for later export via [`trace::chrome_trace`] or
/// aggregation via [`metrics::Metrics::from_events`].
///
/// ```
/// use std::sync::Arc;
/// use mdls_obs::{Event, Observer, Recorder};
///
/// let rec = Arc::new(Recorder::new());
/// let obs: Arc<dyn Observer> = rec.clone();
/// obs.on_event(&Event::Device { device: 0, name: "v100" });
/// assert_eq!(rec.events().len(), 1);
/// ```
#[derive(Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the recorded stream, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything recorded so far (e.g. between benchmark phases).
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }
}

impl Observer for Recorder {
    fn on_event(&self, ev: &Event) {
        self.events.lock().unwrap().push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // the no-observer fast path constructs nothing, but even the
        // observed path must stay allocation-free per event
        fn assert_copy<T: Copy>() {}
        assert_copy::<Event>();
        assert!(std::mem::size_of::<Event>() <= 128);
    }

    #[test]
    fn recorder_keeps_arrival_order() {
        let rec = Recorder::new();
        for device in 0..4 {
            rec.on_event(&Event::SectPreview {
                device,
                end_ms: device as f64,
            });
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        for (i, ev) in evs.iter().enumerate() {
            match ev {
                Event::SectPreview { device, .. } => assert_eq!(*device, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        use std::sync::Arc;
        let rec = Arc::new(Recorder::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.on_event(&Event::Reconciled {
                            device: t,
                            refund_ms: 1.0,
                        });
                    }
                });
            }
        });
        assert_eq!(rec.len(), 400);
    }
}
