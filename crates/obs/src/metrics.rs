//! Metrics aggregation: fold a recorded event stream into latency
//! histograms, scheduler counters and cost-model calibration records.
//!
//! Latency (turnaround = settle − release) is tracked per priority
//! class in a [`Histogram`] with logarithmically spaced bins, so
//! p50/p99/p999 queries cost a bin walk and the memory footprint is
//! independent of job count. Calibration records pair each executed
//! plan stage's *booked* wall clock with its *settled* wall clock per
//! (device, shape, stage kind, rung) — the training signal for cost
//! model refits.

use std::collections::BTreeMap;

use crate::{Event, StageKind};

/// Smallest representable latency (one bin boundary), in ms.
const HIST_MIN_MS: f64 = 1.0e-3;
/// Geometric bin growth: ~5% relative resolution per bin.
const HIST_GROWTH: f64 = 1.05;
/// Bin count: covers `HIST_MIN_MS` up to > 10^6 ms.
const HIST_BINS: usize = 426;

/// A log-binned latency histogram: constant memory, ~5% relative
/// quantile error, exact count/min/max.
#[derive(Clone, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            bins: vec![0; HIST_BINS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    fn bin(ms: f64) -> usize {
        if ms <= HIST_MIN_MS {
            return 0;
        }
        let idx = (ms / HIST_MIN_MS).ln() / HIST_GROWTH.ln();
        (idx as usize).min(HIST_BINS - 1)
    }

    /// Geometric midpoint of bin `i` — the value a quantile query
    /// reports for samples landing there.
    fn bin_mid(i: usize) -> f64 {
        HIST_MIN_MS * HIST_GROWTH.powf(i as f64 + 0.5)
    }

    pub fn record(&mut self, ms: f64) {
        let ms = ms.max(0.0);
        self.bins[Self::bin(ms)] += 1;
        self.count += 1;
        self.sum += ms;
        self.min = self.min.min(ms);
        self.max = self.max.max(ms);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) to ~5% relative accuracy,
    /// clamped to the exact observed [min, max]. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // the first and last bins are under/overflow bins:
                // their midpoints are meaningless, so report the exact
                // observed extreme instead
                return match i {
                    0 => self.min,
                    i if i == HIST_BINS - 1 => self.max,
                    i => Self::bin_mid(i).clamp(self.min, self.max),
                };
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// Mean predicted-vs-settled wall clock for one (device, shape, stage
/// kind, rung) bucket.
#[derive(Clone, Debug)]
pub struct StageCalibration {
    pub device: usize,
    pub rows: usize,
    pub cols: usize,
    pub kind: StageKind,
    pub rung: &'static str,
    pub samples: u64,
    /// Mean booked (cost-model) wall clock, ms.
    pub predicted_ms: f64,
    /// Mean settled (profile-replay) wall clock, ms.
    pub settled_ms: f64,
}

impl StageCalibration {
    /// Settled / predicted: > 1 means the model under-books this
    /// bucket, < 1 means it over-books (refund-bound).
    pub fn bias(&self) -> f64 {
        if self.predicted_ms > 0.0 {
            self.settled_ms / self.predicted_ms
        } else {
            1.0
        }
    }
}

type CalKey = (usize, usize, usize, StageKind, &'static str);

/// Aggregated view of a recorded event stream.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Turnaround histograms keyed by priority class.
    pub latency: BTreeMap<i32, Histogram>,
    /// Turnaround histograms keyed by tenant id (single-tenant paths
    /// put everything under tenant 0).
    pub tenant_latency: BTreeMap<u32, Histogram>,
    /// Jobs settled.
    pub jobs: u64,
    /// Jobs settled inside fused groups of size > 1.
    pub fused_jobs: u64,
    /// Fused groups formed with more than one member.
    pub fused_groups: u64,
    /// Jobs that carried a deadline.
    pub deadline_jobs: u64,
    /// Deadline-carrying jobs that settled past their deadline.
    pub deadline_misses: u64,
    /// Stream groups shrunk by a tight front-member deadline.
    pub deadline_caps: u64,
    /// Online re-booking refunds, and the busy time they returned.
    pub refunds: u64,
    pub refunded_ms: f64,
    /// Bookings that landed (at least partly) in a mid-schedule gap.
    pub gap_fills: u64,
    /// Compacting re-books that slid at least one queued dispatch.
    pub compactions: u64,
    /// Queued dispatches slid left by compaction.
    pub slid_dispatches: u64,
    /// Total completion-time improvement from compaction, ms.
    pub compacted_ms: f64,
    /// Bookings delayed by host staging-worker contention, and the
    /// total delay.
    pub staging_waits: u64,
    pub staging_wait_ms: f64,
    /// Adaptive correction passes booked past their plan.
    pub extensions: u64,
    /// Release-time holds placed on device lanes.
    pub holds: u64,
    /// Planner memo cache traffic.
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
    pub fused_memo_hits: u64,
    pub fused_memo_misses: u64,
    /// Ladder candidates scored across all strategy searches.
    pub candidates: u64,
    /// Device completion previews taken by the SECT policy.
    pub sect_previews: u64,
    /// Seeded transient kernel faults injected into executed work.
    pub transient_faults: u64,
    /// Retry bookings placed by recovery (transient replays plus
    /// post-loss re-dispatches).
    pub retries_booked: u64,
    /// Devices lost stickily mid-run.
    pub devices_lost: u64,
    /// Booked-but-never-executed wall clock written off lost devices.
    pub lost_refund_ms: f64,
    /// Jobs shed at admission (no rung could meet the deadline).
    pub jobs_shed: u64,
    /// Jobs down-laddered to a cheaper rung at admission.
    pub jobs_degraded: u64,
    /// Jobs accepted into a tenant's bounded ingress queue.
    pub tenant_enqueues: u64,
    /// Jobs dropped by a tenant-queue decision (backpressure reject,
    /// shed-oldest eviction, or the overload ladder).
    pub tenant_sheds: u64,
    /// Dry spells where a tenant's device-ms token bucket could not
    /// cover its next job.
    pub quota_exhaustions: u64,
    /// Device circuit-breaker transitions: open (quarantine), probe
    /// dispatches onto a quarantined device, and clean-probe closes.
    pub circuit_opens: u64,
    pub circuit_probes: u64,
    pub circuit_closes: u64,
    calibration: BTreeMap<CalKey, (u64, f64, f64)>,
}

impl Metrics {
    /// Fold `events` (any order) into one aggregate.
    pub fn from_events(events: &[Event]) -> Self {
        let mut m = Metrics::default();
        for ev in events {
            match *ev {
                Event::JobSettled {
                    tenant,
                    priority,
                    end_ms,
                    release_ms,
                    deadline_ms,
                    has_deadline,
                    fused,
                    ..
                } => {
                    m.jobs += 1;
                    m.latency
                        .entry(priority)
                        .or_default()
                        .record(end_ms - release_ms);
                    m.tenant_latency
                        .entry(tenant)
                        .or_default()
                        .record(end_ms - release_ms);
                    if fused > 1 {
                        m.fused_jobs += 1;
                    }
                    if has_deadline {
                        m.deadline_jobs += 1;
                        if end_ms > deadline_ms {
                            m.deadline_misses += 1;
                        }
                    }
                }
                Event::GroupFormed { size, .. } => {
                    if size > 1 {
                        m.fused_groups += 1;
                    }
                }
                Event::DeadlineCap { preferred, cap, .. } => {
                    if cap < preferred {
                        m.deadline_caps += 1;
                    }
                }
                Event::Refund { refunded_ms, .. } => {
                    m.refunds += 1;
                    m.refunded_ms += refunded_ms;
                }
                Event::Reconciled { refund_ms, .. } => {
                    m.refunds += 1;
                    m.refunded_ms += refund_ms;
                }
                Event::GapFilled { .. } => m.gap_fills += 1,
                Event::Compacted { slid, slid_ms, .. } => {
                    m.compactions += 1;
                    m.slid_dispatches += slid as u64;
                    m.compacted_ms += slid_ms;
                }
                Event::StagingWait { wait_ms, .. } => {
                    m.staging_waits += 1;
                    m.staging_wait_ms += wait_ms;
                }
                Event::PassExtended { .. } => m.extensions += 1,
                Event::Held { .. } => m.holds += 1,
                Event::PlanCacheHit { .. } => m.plan_cache_hits += 1,
                Event::PlanCacheMiss { .. } => m.plan_cache_misses += 1,
                Event::FusedMemoHit { .. } => m.fused_memo_hits += 1,
                Event::FusedMemoMiss { .. } => m.fused_memo_misses += 1,
                Event::PlanCandidates { candidates, .. } => m.candidates += candidates as u64,
                Event::SectPreview { .. } => m.sect_previews += 1,
                Event::FaultInjected { .. } => m.transient_faults += 1,
                Event::DeviceLost { refund_ms, .. } => {
                    m.devices_lost += 1;
                    m.lost_refund_ms += refund_ms;
                }
                Event::RetryBooked { .. } => m.retries_booked += 1,
                Event::JobShed { .. } => m.jobs_shed += 1,
                Event::JobDegraded { .. } => m.jobs_degraded += 1,
                Event::TenantEnqueued { .. } => m.tenant_enqueues += 1,
                Event::TenantShed { .. } => m.tenant_sheds += 1,
                Event::QuotaExhausted { .. } => m.quota_exhaustions += 1,
                Event::CircuitOpen { .. } => m.circuit_opens += 1,
                Event::CircuitProbe { .. } => m.circuit_probes += 1,
                Event::CircuitClose { .. } => m.circuit_closes += 1,
                Event::StageTime {
                    device,
                    rows,
                    cols,
                    kind,
                    rung,
                    predicted_ms,
                    settled_ms,
                } => {
                    let slot = m
                        .calibration
                        .entry((device, rows, cols, kind, rung))
                        .or_insert((0, 0.0, 0.0));
                    slot.0 += 1;
                    slot.1 += predicted_ms;
                    slot.2 += settled_ms;
                }
                Event::Device { .. }
                | Event::StageBooked { .. }
                | Event::PlanSpan { .. }
                | Event::StagingWorker { .. }
                | Event::StagingBooked { .. } => {}
            }
        }
        m
    }

    /// Per-bucket calibration records, in deterministic key order.
    pub fn calibration(&self) -> Vec<StageCalibration> {
        self.calibration
            .iter()
            .map(
                |(&(device, rows, cols, kind, rung), &(samples, pred, settled))| StageCalibration {
                    device,
                    rows,
                    cols,
                    kind,
                    rung,
                    samples,
                    predicted_ms: pred / samples as f64,
                    settled_ms: settled / samples as f64,
                },
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_log_accurate() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 0.1); // 0.1 .. 100 ms uniform
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50();
        assert!((p50 / 50.0 - 1.0).abs() < 0.06, "p50 {p50}");
        let p99 = h.p99();
        assert!((p99 / 99.0 - 1.0).abs() < 0.06, "p99 {p99}");
        assert!(h.p999() <= h.max());
        assert!(h.quantile(0.0) >= 0.1 * 0.94);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(1.0e9); // far past the last bin boundary
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), 0.0, "clamped to the observed min");
        assert_eq!(h.quantile(1.0), 1.0e9, "clamped to the observed max");
        assert_eq!(Histogram::new().p50(), 0.0);
    }

    #[test]
    fn metrics_fold_fault_counters() {
        let events = vec![
            Event::FaultInjected {
                device: 1,
                job: 3,
                at_ms: 2.0,
                retry: 1,
            },
            Event::DeviceLost {
                device: 1,
                at_ms: 5.0,
                interrupted: 2,
                refund_ms: 7.5,
            },
            Event::RetryBooked {
                device: 0,
                job: 3,
                end_ms: 9.0,
                backoff_ms: 0.1,
            },
            Event::RetryBooked {
                device: 2,
                job: 4,
                end_ms: 9.5,
                backoff_ms: 0.2,
            },
            Event::JobShed {
                job: 5,
                deadline_ms: 1.0,
                predicted_end_ms: 4.0,
            },
            Event::JobDegraded {
                job: 6,
                from_digits: 90,
                to_digits: 60,
            },
        ];
        let m = Metrics::from_events(&events);
        assert_eq!(m.transient_faults, 1);
        assert_eq!(m.devices_lost, 1);
        assert_eq!(m.lost_refund_ms, 7.5);
        assert_eq!(m.retries_booked, 2);
        assert_eq!(m.jobs_shed, 1);
        assert_eq!(m.jobs_degraded, 1);
    }

    #[test]
    fn metrics_fold_service_counters() {
        let events = vec![
            Event::TenantEnqueued {
                tenant: 1,
                job: 10,
                queued: 3,
            },
            Event::TenantShed {
                tenant: 1,
                job: 11,
                at_ms: 2.0,
                reason: "reject",
            },
            Event::TenantShed {
                tenant: 2,
                job: 12,
                at_ms: 3.0,
                reason: "overload",
            },
            Event::QuotaExhausted {
                tenant: 1,
                at_ms: 4.0,
                needed_ms: 2.5,
                available_ms: 0.25,
            },
            Event::CircuitOpen {
                device: 1,
                at_ms: 5.0,
                faults: 4,
            },
            Event::CircuitProbe {
                device: 1,
                job: 13,
                at_ms: 9.0,
            },
            Event::CircuitClose {
                device: 1,
                at_ms: 10.0,
            },
        ];
        let m = Metrics::from_events(&events);
        assert_eq!(m.tenant_enqueues, 1);
        assert_eq!(m.tenant_sheds, 2);
        assert_eq!(m.quota_exhaustions, 1);
        assert_eq!(m.circuit_opens, 1);
        assert_eq!(m.circuit_probes, 1);
        assert_eq!(m.circuit_closes, 1);
    }

    #[test]
    fn metrics_fold_counts_and_calibration() {
        let events = vec![
            Event::JobSettled {
                job: 0,
                device: 0,
                tenant: 3,
                priority: 1,
                start_ms: 0.0,
                end_ms: 4.0,
                release_ms: 1.0,
                deadline_ms: 3.0,
                has_deadline: true,
                fused: 2,
                corrections: 1,
                refunded_ms: 0.0,
                extended_ms: 0.0,
                achieved_digits: 30.0,
            },
            Event::JobSettled {
                job: 1,
                device: 0,
                tenant: 3,
                priority: 0,
                start_ms: 0.0,
                end_ms: 2.0,
                release_ms: 0.0,
                deadline_ms: 0.0,
                has_deadline: false,
                fused: 1,
                corrections: 0,
                refunded_ms: 0.0,
                extended_ms: 0.0,
                achieved_digits: 26.0,
            },
            Event::GroupFormed {
                rows: 64,
                cols: 64,
                digits: 30,
                size: 2,
                preferred: 4,
            },
            Event::Refund {
                device: 0,
                from_stage: 4,
                freed_ms: 1.0,
                refunded_ms: 0.5,
                at_ms: 3.0,
            },
            Event::PlanCacheMiss {
                rows: 64,
                cols: 64,
                digits: 30,
            },
            Event::PlanCacheHit {
                rows: 64,
                cols: 64,
                digits: 30,
            },
            Event::PlanCandidates {
                rows: 64,
                cols: 64,
                digits: 30,
                candidates: 3,
            },
            Event::StageTime {
                device: 0,
                rows: 64,
                cols: 64,
                kind: StageKind::Factor,
                rung: "d2",
                predicted_ms: 2.0,
                settled_ms: 1.0,
            },
            Event::StageTime {
                device: 0,
                rows: 64,
                cols: 64,
                kind: StageKind::Factor,
                rung: "d2",
                predicted_ms: 2.0,
                settled_ms: 2.0,
            },
        ];
        let m = Metrics::from_events(&events);
        assert_eq!(m.jobs, 2);
        assert_eq!(m.fused_jobs, 1);
        assert_eq!(m.fused_groups, 1);
        assert_eq!((m.deadline_jobs, m.deadline_misses), (1, 1));
        assert_eq!(m.refunds, 1);
        assert_eq!(m.refunded_ms, 0.5);
        assert_eq!((m.plan_cache_hits, m.plan_cache_misses), (1, 1));
        assert_eq!(m.candidates, 3);
        // two latency classes, one sample each
        assert_eq!(m.latency.len(), 2);
        assert_eq!(m.latency[&1].count(), 1);
        assert!((m.latency[&1].p50() - 3.0).abs() < 0.2);
        // both settles share tenant 3, so one tenant histogram holds both
        assert_eq!(m.tenant_latency.len(), 1);
        assert_eq!(m.tenant_latency[&3].count(), 2);
        // calibration: one bucket, two samples, means of both columns
        let cal = m.calibration();
        assert_eq!(cal.len(), 1);
        assert_eq!(cal[0].samples, 2);
        assert!((cal[0].predicted_ms - 2.0).abs() < 1e-12);
        assert!((cal[0].settled_ms - 1.5).abs() < 1e-12);
        assert!((cal[0].bias() - 0.75).abs() < 1e-12);
    }
}
