//! Algorithm 2: blocked accelerated Householder QR.
//!
//! The `M × N·n` matrix `A` is reduced panel by panel (`N` tiles of `n`
//! columns). For panel `k`:
//!
//! 1. for each column `ℓ`: compute the Householder vector `v` and the
//!    scalar `β = 2 / vᴴv` (**β, v**), form `w = β Rᴴ v` (**β·Rᵀ⋆v**) and
//!    rank-one update the panel `R := R − v wᴴ` (**update R**);
//! 2. aggregate the `n` reflectors in the WY representation
//!    `P = I + W Yᴴ`, column by column: `z = −β (v + W (Yᴴ v))`
//!    (**compute W**);
//! 3. update `Q`: form `YWᴴ` once (**Y⋆Wᵀ**), multiply
//!    `QWY := Q ⋆ (YWᴴ)ᴴ` (**Q⋆WYᵀ**), add (**Q + QWY**);
//! 4. update the trailing columns `C`: multiply `YWTC := (YWᴴ) ⋆ C`
//!    (**YWT⋆C**), add (**R + YWTC**).
//!
//! The nine bold names are the row legend of the paper's Tables 3–6.
//! On complex data every transpose is the Hermitian transpose, as the
//! paper prescribes.

#![forbid(unsafe_code)]

pub mod cost;
pub mod driver;
pub mod host;
pub mod kernels;

pub use driver::{qr_decompose, qr_model_profile, qr_on_sim, QrDeviceState, QrOptions, QrRun};
pub use host::householder_qr_host;

/// Stage label: Householder vector and β.
pub const STAGE_BETA_V: &str = "beta, v";
/// Stage label: `w = β Rᴴ v`.
pub const STAGE_BETA_RTV: &str = "beta*R^T*v";
/// Stage label: rank-one panel update.
pub const STAGE_UPDATE_R: &str = "update R";
/// Stage label: WY aggregation.
pub const STAGE_COMPUTE_W: &str = "compute W";
/// Stage label: the `Y Wᴴ` product.
pub const STAGE_YWT: &str = "Y*W^T";
/// Stage label: the `Q (YWᴴ)ᴴ` product.
pub const STAGE_QWYT: &str = "Q*WY^T";
/// Stage label: the `(YWᴴ) C` product.
pub const STAGE_YWTC: &str = "YWT*C";
/// Stage label: the Q addition.
pub const STAGE_Q_ADD: &str = "Q + QWY";
/// Stage label: the R addition.
pub const STAGE_R_ADD: &str = "R + YWTC";

/// All nine stage labels in table order.
pub const STAGES: [&str; 9] = [
    STAGE_BETA_V,
    STAGE_BETA_RTV,
    STAGE_UPDATE_R,
    STAGE_COMPUTE_W,
    STAGE_YWT,
    STAGE_QWYT,
    STAGE_YWTC,
    STAGE_Q_ADD,
    STAGE_R_ADD,
];
