//! Golden-reference Householder QR on the host (unblocked, Golub–Van Loan
//! Algorithm 5.1.1 with the complex phase convention) — the oracle the
//! simulated device kernels are verified against.

use mdls_matrix::HostMat;
use multidouble::{MdReal, MdScalar};

/// Factor `A = Q R` with explicit `Q` (`m × m`) and `R` (`m × n`).
pub fn householder_qr_host<S: MdScalar>(a: &HostMat<S>) -> (HostMat<S>, HostMat<S>) {
    let m = a.rows;
    let n = a.cols;
    let mut r = a.clone();
    let mut q = HostMat::<S>::identity(m);

    for c in 0..n.min(m) {
        // Householder vector for column c
        let alpha = r.get(c, c);
        let mut sigma = <S::Real as MdReal>::zero();
        for i in (c + 1)..m {
            sigma += r.get(i, c).norm_sqr();
        }
        let alpha_sq = alpha.norm_sqr();
        let normx = (alpha_sq + sigma).sqrt();
        if normx.is_zero() {
            continue;
        }
        let abs_alpha = alpha_sq.sqrt();
        let phase = if abs_alpha.is_zero() {
            S::one()
        } else {
            alpha.unscale(abs_alpha)
        };
        let v1 = alpha + phase.scale(normx);
        let v1_sq = v1.norm_sqr();
        let mut v = vec![S::zero(); m];
        v[c] = S::one();
        for i in (c + 1)..m {
            v[i] = r.get(i, c) / v1;
        }
        let two = <S::Real as MdReal>::from_f64(2.0);
        let beta = two / (<S::Real as MdReal>::one() + sigma / v1_sq);

        // R := R - v (beta v^H R)
        for j in c..n {
            let mut w = S::zero();
            for i in c..m {
                w += v[i].conj() * r.get(i, j);
            }
            let w = w.scale(beta);
            for i in c..m {
                let val = r.get(i, j) - v[i] * w;
                r.set(i, j, val);
            }
        }
        // Q := Q - (beta Q v) v^H
        for i in 0..m {
            let mut qv = S::zero();
            for t in c..m {
                qv += q.get(i, t) * v[t];
            }
            let qv = qv.scale(beta);
            for t in c..m {
                let val = q.get(i, t) - qv * v[t].conj();
                q.set(i, t, val);
            }
        }
    }
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn host_qr_reconstructs_real() {
        let mut rng = StdRng::seed_from_u64(201);
        let a = HostMat::<Qd>::random(10, 10, &mut rng);
        let (q, r) = householder_qr_host(&a);
        let o = q.orthogonality_defect().to_f64();
        let e = q.matmul(&r).diff_frobenius(&a).to_f64();
        assert!(o < 1e-58, "ortho {o:e}");
        assert!(e < 1e-58, "recon {e:e}");
    }

    #[test]
    fn host_qr_reconstructs_complex() {
        let mut rng = StdRng::seed_from_u64(202);
        let a = HostMat::<Complex<Dd>>::random(8, 8, &mut rng);
        let (q, r) = householder_qr_host(&a);
        let o = q.orthogonality_defect().to_f64();
        let e = q.matmul(&r).diff_frobenius(&a).to_f64();
        assert!(o < 1e-27, "ortho {o:e}");
        assert!(e < 1e-27, "recon {e:e}");
    }

    #[test]
    fn host_qr_r_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(203);
        let a = HostMat::<Dd>::random(9, 6, &mut rng);
        let (_, r) = householder_qr_host(&a);
        assert!(r.max_below_diagonal() < 1e-28);
    }
}
