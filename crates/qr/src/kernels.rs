//! Functional kernel bodies for Algorithm 2.
//!
//! Geometry convention: product kernels parallelize over output columns
//! (block `j` owns column `j`, threads stride the rows); the Householder
//! kernels run their reduction in block 0 while the declared grid carries
//! the multi-block geometry to the timing model (the paper's multi-block
//! reductions produce identical values — the simulator folds them into a
//! single sequential pass for clarity).

use gpusim::{BlockCtx, DeviceBuf, DeviceMat};
use multidouble::{MdReal, MdScalar};

/// Householder `β, v` for global column `c`.
///
/// Reads `R[c..m, c]`, writes the normalized reflector into `y[.., l]`
/// (`y[c, l] = 1`), and `β` (lifted to the scalar type) into `betas[l]`.
pub fn beta_v_block<S: MdScalar>(
    ctx: BlockCtx,
    r: &DeviceMat<S>,
    y: &DeviceMat<S>,
    betas: &DeviceBuf<S>,
    col0: usize,
    c: usize,
    l: usize,
) {
    if ctx.block != 0 {
        return;
    }
    let m = r.rows;
    let _ = col0;
    // Y is reused across panels and the WY products run at full height
    // (the paper's kernels do not exploit the trapezoid): clear the rows
    // of column l above the reflector start.
    for i in 0..c {
        y.set(i, l, S::zero());
    }
    let alpha = r.get(c, c);
    // sigma = sum of |R[i, c]|^2 below the diagonal
    let mut sigma = <S::Real as MdReal>::zero();
    for i in (c + 1)..m {
        sigma += r.get(i, c).norm_sqr();
    }
    let alpha_sq = alpha.norm_sqr();
    let normx = (alpha_sq + sigma).sqrt();

    if normx.is_zero() {
        // zero column: identity reflector
        y.set(c, l, S::one());
        for i in (c + 1)..m {
            y.set(i, l, S::zero());
        }
        betas.set(l, S::zero());
        return;
    }

    // phase = alpha / |alpha| (sign for real data), guarding alpha == 0
    let abs_alpha = alpha_sq.sqrt();
    let phase = if abs_alpha.is_zero() {
        S::one()
    } else {
        alpha.unscale(abs_alpha)
    };
    // v1 = alpha + phase * ||x||: the cancellation-free choice
    let v1 = alpha + phase.scale(normx);
    let v1_sq = v1.norm_sqr();

    y.set(c, l, S::one());
    for i in (c + 1)..m {
        y.set(i, l, r.get(i, c) / v1);
    }
    // beta = 2 / (v^H v) with v normalized to v[c] = 1:
    // v^H v = 1 + sigma / |v1|^2
    let two = <S::Real as MdReal>::from_f64(2.0);
    let beta = two / (<S::Real as MdReal>::one() + sigma / v1_sq);
    betas.set(l, S::from_real(beta));
}

/// `w[j] = β Σ_i conj(R[i, col0 + j]) v[i]` for `j = l..n` — the
/// transposed panel product with its sum reduction.
pub fn beta_rtv_block<S: MdScalar>(
    ctx: BlockCtx,
    r: &DeviceMat<S>,
    y: &DeviceMat<S>,
    betas: &DeviceBuf<S>,
    w: &DeviceBuf<S>,
    col0: usize,
    l: usize,
    n: usize,
) {
    if ctx.block != 0 {
        return;
    }
    let m = r.rows;
    let c = col0 + l;
    let beta = betas.get(l);
    for j in l..n {
        let mut acc = S::zero();
        for i in c..m {
            acc += r.get(i, col0 + j).conj() * y.get(i, l);
        }
        w.set(j, acc * beta);
    }
}

/// Rank-one update `R[i, col0 + j] -= v[i] * conj(w[j])`, block `j`.
pub fn update_r_block<S: MdScalar>(
    ctx: BlockCtx,
    r: &DeviceMat<S>,
    y: &DeviceMat<S>,
    w: &DeviceBuf<S>,
    col0: usize,
    l: usize,
) {
    let m = r.rows;
    let c = col0 + l;
    let j = col0 + l + ctx.block; // global column updated by this block
    let wj = w.get(l + ctx.block).conj();
    for i in c..m {
        let v = r.get(i, j) - y.get(i, l) * wj;
        r.set(i, j, v);
    }
}

/// One column of the WY aggregation:
/// `u = Yᴴ v_l` over columns `0..l`, then `W[:, l] = −β (v_l + W u)`.
pub fn compute_w_block<S: MdScalar>(
    ctx: BlockCtx,
    y: &DeviceMat<S>,
    wmat: &DeviceMat<S>,
    betas: &DeviceBuf<S>,
    col0: usize,
    l: usize,
) {
    if ctx.block != 0 {
        return;
    }
    let _ = col0;
    let m = y.rows;
    let beta = betas.get(l);
    // full height: rows above the panel hold zeros in Y, and W's column
    // comes out zero there, so the reused W buffer refreshes itself
    let mut u = vec![S::zero(); l];
    for (t, ut) in u.iter_mut().enumerate() {
        let mut acc = S::zero();
        for i in 0..m {
            acc += y.get(i, t).conj() * y.get(i, l);
        }
        *ut = acc;
    }
    for i in 0..m {
        let mut acc = y.get(i, l);
        for (t, ut) in u.iter().enumerate() {
            acc += wmat.get(i, t) * *ut;
        }
        wmat.set(i, l, -(acc * beta));
    }
}

/// `YWH[r, c2] = Σ_t Y[r, t] conj(W[c2, t])` over the full `M × M`
/// output (rows above the panel contribute zeros) — block `c2`.
pub fn ywt_block<S: MdScalar>(
    ctx: BlockCtx,
    y: &DeviceMat<S>,
    wmat: &DeviceMat<S>,
    ywh: &DeviceMat<S>,
    col0: usize,
    n: usize,
) {
    let _ = col0;
    let m = y.rows;
    let c2 = ctx.block;
    if c2 >= m {
        return;
    }
    for r in 0..m {
        let mut acc = S::zero();
        for t in 0..n {
            acc += y.get(r, t) * wmat.get(c2, t).conj();
        }
        ywh.set(r, c2, acc);
    }
}

/// `QWY[i, j] = Σ_t Q[i, t] conj(YWH[j, t])` over the full `M × M`
/// product — block `j`.
pub fn qwyt_block<S: MdScalar>(
    ctx: BlockCtx,
    q: &DeviceMat<S>,
    ywh: &DeviceMat<S>,
    qwy: &DeviceMat<S>,
    col0: usize,
) {
    let _ = col0;
    let m = q.rows;
    let j = ctx.block;
    if j >= m {
        return;
    }
    for i in 0..m {
        let mut acc = S::zero();
        for t in 0..m {
            acc += q.get(i, t) * ywh.get(j, t).conj();
        }
        qwy.set(i, j, acc);
    }
}

/// `Q[i, j] += QWY[i, j]` over the full `M × M` — block `j`.
pub fn q_add_block<S: MdScalar>(ctx: BlockCtx, q: &DeviceMat<S>, qwy: &DeviceMat<S>, col0: usize) {
    let _ = col0;
    let m = q.rows;
    let j = ctx.block;
    if j >= m {
        return;
    }
    for i in 0..m {
        let v = q.get(i, j) + qwy.get(i, j);
        q.set(i, j, v);
    }
}

/// `YWTC[r, j] = Σ_t YWH[r, t] R[col0 + t, cstart + j]` — block `j`
/// (the trailing-column update product).
pub fn ywtc_block<S: MdScalar>(
    ctx: BlockCtx,
    ywh: &DeviceMat<S>,
    r: &DeviceMat<S>,
    ywtc: &DeviceMat<S>,
    col0: usize,
    cstart: usize,
) {
    let _ = col0;
    let m = r.rows;
    let j = ctx.block;
    if cstart + j >= r.cols {
        return;
    }
    for row in 0..m {
        let mut acc = S::zero();
        for t in 0..m {
            acc += ywh.get(row, t) * r.get(t, cstart + j);
        }
        ywtc.set(row, j, acc);
    }
}

/// `R[col0 + r, cstart + j] += YWTC[r, j]` — block `j`.
pub fn r_add_block<S: MdScalar>(
    ctx: BlockCtx,
    r: &DeviceMat<S>,
    ywtc: &DeviceMat<S>,
    col0: usize,
    cstart: usize,
) {
    let _ = col0;
    let m = r.rows;
    let j = ctx.block;
    if cstart + j >= r.cols {
        return;
    }
    for row in 0..m {
        let v = r.get(row, cstart + j) + ywtc.get(row, j);
        r.set(row, cstart + j, v);
    }
}
