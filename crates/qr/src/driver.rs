//! The Algorithm 2 driver.

use gpusim::{ExecMode, Gpu, Profile, Sim};
use mdls_matrix::HostMat;
use multidouble::MdScalar;

use crate::cost;
use crate::kernels;
use crate::{
    STAGE_BETA_RTV, STAGE_BETA_V, STAGE_COMPUTE_W, STAGE_QWYT, STAGE_Q_ADD, STAGE_R_ADD,
    STAGE_UPDATE_R, STAGE_YWT, STAGE_YWTC,
};

/// Panel configuration of the blocked QR.
#[derive(Clone, Copy, Debug)]
pub struct QrOptions {
    /// Number of column tiles `N`.
    pub tiles: usize,
    /// Tile size `n` — columns per panel and threads per block.
    pub tile_size: usize,
}

impl QrOptions {
    /// Number of columns `N · n`.
    pub fn cols(&self) -> usize {
        self.tiles * self.tile_size
    }
}

/// Outcome of a QR run.
pub struct QrRun<S> {
    /// Orthogonal factor `Q` (functional modes only).
    pub q: Option<HostMat<S>>,
    /// Triangular factor `R` (functional modes only; below-diagonal
    /// entries hold roundoff-level residue, as on the real device).
    pub r: Option<HostMat<S>>,
    /// Stage-resolved profile (the paper's Tables 3–6 rows).
    pub profile: Profile,
}

/// Device-side state of a factorization in progress.
pub struct QrDeviceState<S: MdScalar> {
    /// The matrix being reduced (input `A`, output `R`).
    pub r: gpusim::DeviceMat<S>,
    /// The accumulated orthogonal factor.
    pub q: gpusim::DeviceMat<S>,
    y: gpusim::DeviceMat<S>,
    w: gpusim::DeviceMat<S>,
    ywh: gpusim::DeviceMat<S>,
    qwy: gpusim::DeviceMat<S>,
    ywtc: gpusim::DeviceMat<S>,
    betas: gpusim::DeviceBuf<S>,
    wvec: gpusim::DeviceBuf<S>,
}

impl<S: MdScalar> QrDeviceState<S> {
    /// Allocate all device buffers for an `m × N·n` factorization.
    pub fn alloc(sim: &Sim, m: usize, opts: &QrOptions) -> Self {
        let cols = opts.cols();
        let n = opts.tile_size;
        QrDeviceState {
            r: sim.alloc_mat::<S>(m, cols),
            q: sim.alloc_mat::<S>(m, m),
            y: sim.alloc_mat::<S>(m, n),
            w: sim.alloc_mat::<S>(m, n),
            ywh: sim.alloc_mat::<S>(m, m),
            qwy: sim.alloc_mat::<S>(m, m),
            ywtc: sim.alloc_mat::<S>(m, cols),
            betas: sim.alloc_vec::<S>(n),
            wvec: sim.alloc_vec::<S>(n),
        }
    }

    /// Set `Q := I` (host-side initialization, not a profiled kernel).
    pub fn init_q_identity(&self) {
        if !self.q.buf.is_materialized() {
            return;
        }
        for i in 0..self.q.rows {
            for j in 0..self.q.cols {
                self.q.set(i, j, if i == j { S::one() } else { S::zero() });
            }
        }
        self.q.buf.reset_traffic();
    }
}

/// Run Algorithm 2 on an existing session: reduce `st.r` in place and
/// accumulate `st.q`.
pub fn qr_on_sim<S: MdScalar>(sim: &Sim, st: &QrDeviceState<S>, opts: &QrOptions) {
    let m = st.r.rows;
    let n = opts.tile_size;
    let nt = opts.tiles;
    assert!(m >= opts.cols(), "QR requires M >= N*n (tall or square)");

    for k in 0..nt {
        let col0 = k * n;
        let _h_k = m - col0;

        // --- stage 1: Householder columns of the panel -----------------
        for l in 0..n {
            let c = col0 + l;
            let h = m - c;
            let mcols = n - l;

            sim.launch(
                STAGE_BETA_V,
                h.div_ceil(n),
                n,
                cost::beta_v_cost::<S>(h),
                |ctx| kernels::beta_v_block(ctx, &st.r, &st.y, &st.betas, col0, c, l),
            );

            sim.launch(
                STAGE_BETA_RTV,
                mcols,
                n,
                cost::beta_rtv_cost::<S>(h, mcols, n),
                |ctx| kernels::beta_rtv_block(ctx, &st.r, &st.y, &st.betas, &st.wvec, col0, l, n),
            );

            sim.launch(
                STAGE_UPDATE_R,
                mcols,
                n,
                cost::update_r_cost::<S>(h, mcols),
                |ctx| kernels::update_r_block(ctx, &st.r, &st.y, &st.wvec, col0, l),
            );
        }

        // --- stage 2: WY aggregation ------------------------------------
        // full height M, as in the paper's kernels (the zero-padded rows
        // above the panel are computed along; this is what the paper's
        // flop counters tally and why `compute W` dominates small dims)
        for l in 0..n {
            sim.launch(
                STAGE_COMPUTE_W,
                m.div_ceil(n),
                n,
                cost::compute_w_cost::<S>(m, l),
                |ctx| kernels::compute_w_block(ctx, &st.y, &st.w, &st.betas, col0, l),
            );
        }

        // --- stage 3: Q update ------------------------------------------
        sim.launch(STAGE_YWT, m, n, cost::gemm_cost::<S>(m, m, n, n), |ctx| {
            kernels::ywt_block(ctx, &st.y, &st.w, &st.ywh, col0, n)
        });
        sim.launch(STAGE_QWYT, m, n, cost::gemm_cost::<S>(m, m, m, n), |ctx| {
            kernels::qwyt_block(ctx, &st.q, &st.ywh, &st.qwy, col0)
        });
        sim.launch(STAGE_Q_ADD, m, n, cost::add_cost::<S>(m, m), |ctx| {
            kernels::q_add_block(ctx, &st.q, &st.qwy, col0)
        });

        // --- stage 4: trailing-column update -----------------------------
        if k + 1 < nt {
            let cstart = (k + 1) * n;
            let c_k = opts.cols() - cstart;
            sim.launch(
                STAGE_YWTC,
                c_k,
                n,
                cost::gemm_cost::<S>(m, c_k, m, n),
                |ctx| kernels::ywtc_block(ctx, &st.ywh, &st.r, &st.ywtc, col0, cstart),
            );
            sim.launch(STAGE_R_ADD, c_k, n, cost::add_cost::<S>(m, c_k), |ctx| {
                kernels::r_add_block(ctx, &st.r, &st.ywtc, col0, cstart)
            });
        }
    }
}

/// Standalone QR factorization of a host matrix: session setup, upload,
/// Algorithm 2, download.
pub fn qr_decompose<S: MdScalar>(
    gpu: &Gpu,
    mode: ExecMode,
    a: &HostMat<S>,
    opts: &QrOptions,
) -> QrRun<S> {
    assert_eq!(a.cols, opts.cols(), "matrix does not match tiling");
    let sim = Sim::new(gpu.clone(), mode);
    let st = QrDeviceState::<S>::alloc(&sim, a.rows, opts);

    sim.record_host_overhead();
    sim.record_transfer((a.rows * a.cols * S::BYTES) as u64);
    if sim.is_functional() {
        a.upload_to(&st.r);
    }
    st.init_q_identity();

    qr_on_sim(&sim, &st, opts);

    sim.record_transfer(((a.rows * a.cols + a.rows * a.rows) * S::BYTES) as u64);
    let (q, r) = if sim.is_functional() {
        (
            Some(HostMat::download_from(&st.q)),
            Some(HostMat::download_from(&st.r)),
        )
    } else {
        (None, None)
    };
    QrRun {
        q,
        r,
        profile: sim.profile(),
    }
}

/// Model-only QR profile for an `rows × N·n` factorization: no host
/// matrix, no device storage — only the analytic cost model runs. This is
/// how the bench harness reaches the paper's large dimensions.
pub fn qr_model_profile<S: MdScalar>(gpu: &Gpu, rows: usize, opts: &QrOptions) -> Profile {
    let sim = Sim::new(gpu.clone(), ExecMode::ModelOnly);
    let st = QrDeviceState::<S>::alloc(&sim, rows, opts);
    sim.record_host_overhead();
    sim.record_transfer((rows * opts.cols() * S::BYTES) as u64);
    qr_on_sim(&sim, &st, opts);
    sim.record_transfer(((rows * opts.cols() + rows * rows) * S::BYTES) as u64);
    sim.profile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Complex, Dd, MdReal, Od, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Factor a random matrix and return (orthogonality defect, |A - QR|).
    fn qr_defects<S: MdScalar>(m: usize, opts: QrOptions, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = HostMat::<S>::random(m, opts.cols(), &mut rng);
        let run = qr_decompose(&Gpu::v100(), ExecMode::Sequential, &a, &opts);
        let q = run.q.unwrap();
        let mut r = run.r.unwrap();
        // clear below-diagonal roundoff residue for the reconstruction
        for c in 0..r.cols {
            for row in (c + 1)..r.rows {
                r.set(row, c, S::zero());
            }
        }
        let ortho = q.orthogonality_defect().to_f64();
        let qr = q.matmul(&r);
        let recon = qr.diff_frobenius(&a).to_f64() / a.frobenius().to_f64();
        (ortho, recon)
    }

    #[test]
    fn dd_square_factorization() {
        let (o, e) = qr_defects::<Dd>(
            24,
            QrOptions {
                tiles: 3,
                tile_size: 8,
            },
            101,
        );
        assert!(o < 1e-28, "orthogonality defect {o:e}");
        assert!(e < 1e-28, "reconstruction error {e:e}");
    }

    #[test]
    fn qd_square_factorization() {
        let (o, e) = qr_defects::<Qd>(
            16,
            QrOptions {
                tiles: 2,
                tile_size: 8,
            },
            102,
        );
        assert!(o < 1e-58, "orthogonality defect {o:e}");
        assert!(e < 1e-58, "reconstruction error {e:e}");
    }

    #[test]
    fn od_small_factorization() {
        let (o, e) = qr_defects::<Od>(
            8,
            QrOptions {
                tiles: 2,
                tile_size: 4,
            },
            103,
        );
        assert!(o < 1e-118, "orthogonality defect {o:e}");
        assert!(e < 1e-118, "reconstruction error {e:e}");
    }

    #[test]
    fn complex_dd_factorization() {
        let (o, e) = qr_defects::<Complex<Dd>>(
            12,
            QrOptions {
                tiles: 2,
                tile_size: 6,
            },
            104,
        );
        assert!(o < 1e-27, "orthogonality defect {o:e}");
        assert!(e < 1e-27, "reconstruction error {e:e}");
    }

    #[test]
    fn tall_matrix_factorization() {
        let (o, e) = qr_defects::<Dd>(
            20,
            QrOptions {
                tiles: 2,
                tile_size: 5,
            },
            105,
        );
        assert!(o < 1e-27);
        assert!(e < 1e-27);
    }

    #[test]
    fn double_precision_baseline() {
        let (o, e) = qr_defects::<f64>(
            32,
            QrOptions {
                tiles: 4,
                tile_size: 8,
            },
            106,
        );
        assert!(o < 1e-13);
        assert!(e < 1e-13);
    }

    #[test]
    fn all_nine_stages_present() {
        let mut rng = StdRng::seed_from_u64(107);
        let opts = QrOptions {
            tiles: 2,
            tile_size: 4,
        };
        let a = HostMat::<Dd>::random(8, 8, &mut rng);
        let run = qr_decompose(&Gpu::v100(), ExecMode::Sequential, &a, &opts);
        for stage in crate::STAGES {
            assert!(
                run.profile.stage(stage).is_some(),
                "stage {stage:?} missing"
            );
        }
        // single-panel matrices have no trailing update
        let single = qr_decompose(
            &Gpu::v100(),
            ExecMode::Sequential,
            &HostMat::<Dd>::random(4, 4, &mut rng),
            &QrOptions {
                tiles: 1,
                tile_size: 4,
            },
        );
        assert!(single.profile.stage(crate::STAGE_YWTC).is_none());
    }

    #[test]
    fn model_only_profile_matches_functional() {
        let mut rng = StdRng::seed_from_u64(108);
        let opts = QrOptions {
            tiles: 2,
            tile_size: 8,
        };
        let a = HostMat::<Qd>::random(16, 16, &mut rng);
        let f = qr_decompose(&Gpu::v100(), ExecMode::Sequential, &a, &opts);
        let m = qr_decompose(&Gpu::v100(), ExecMode::ModelOnly, &a, &opts);
        assert!(m.q.is_none());
        assert_eq!(f.profile.all_kernels_ms(), m.profile.all_kernels_ms());
        assert_eq!(f.profile.total_flops_paper(), m.profile.total_flops_paper());
        assert_eq!(f.profile.total_launches(), m.profile.total_launches());
    }

    #[test]
    fn r_is_upper_triangular_up_to_roundoff() {
        let mut rng = StdRng::seed_from_u64(109);
        let opts = QrOptions {
            tiles: 3,
            tile_size: 4,
        };
        let a = HostMat::<Qd>::random(12, 12, &mut rng);
        let run = qr_decompose(&Gpu::v100(), ExecMode::Sequential, &a, &opts);
        let below = run.r.unwrap().max_below_diagonal();
        assert!(below < 1e-60, "below-diagonal residue {below:e}");
    }
}
