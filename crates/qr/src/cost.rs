//! Analytic operation and traffic counts for the nine QR stages.
//!
//! Matrix-matrix products follow the paper's register-blocked style
//! (no shared-memory tiling): one thread produces one output element,
//! reading a row of the left operand and a column of the right operand
//! from global memory. The row is shared by the threads of one block
//! (hardware broadcasts coalesced reads through L1), so effective traffic
//! per output element is `inner * (1 + 1/block)` operands.

use gpusim::KernelCost;
use multidouble::{MdScalar, OpCounts};

/// Kernel efficiency classes, calibrated once against the V100 columns of
/// the paper's Tables 4 and 6 (see DESIGN.md §6). They encode how well
/// each kernel shape keeps the double precision pipelines busy relative
/// to the device ILP base: register-blocked products pipeline well;
/// norm/reduction kernels are dependency-chained; the transposed
/// panel product `β Rᵀ⋆v` additionally strides across columns.
pub mod eff {
    /// Householder norm + normalization.
    pub const BETA_V: f64 = 0.14;
    /// Transposed panel product with multi-block sum reduction.
    pub const BETA_RTV: f64 = 0.026;
    /// Rank-one panel update.
    pub const UPDATE_R: f64 = 0.25;
    /// WY aggregation (two chained matrix-vector products per column).
    pub const COMPUTE_W: f64 = 0.13;
    /// Register-blocked matrix-matrix products.
    pub const GEMM: f64 = 3.7;
}

/// Fraction of per-element operand traffic that misses L1/L2 in the
/// register-blocked products. Reuse degrades as the shared operand
/// outgrows the L2 cache, which the inner dimension proxies — this is
/// what makes double double products memory bound at dimension 2048
/// (the performance drop of the paper's Table 6).
fn gemm_miss(inner: usize) -> f64 {
    (0.10 + inner as f64 / 8192.0).min(0.45)
}

/// Cost of a `rows × cols` output produced from an `inner`-deep product.
pub fn gemm_cost<S: MdScalar>(rows: usize, cols: usize, inner: usize, block: usize) -> KernelCost {
    let (r, c, k, b) = (rows as u64, cols as u64, inner as u64, block.max(1) as u64);
    let out = r * c;
    let ops = OpCounts {
        add: out * k,
        sub: 0,
        mul: out * k,
        div: 0,
        sqrt: 0,
    };
    let streamed = (out * k) as f64 * gemm_miss(inner);
    let reads = streamed as u64 + out * k / b + out / b; // columns + amortized row
    KernelCost::of::<S>(ops, reads, out).with_eff(eff::GEMM)
}

/// Elementwise matrix addition of `rows × cols`.
pub fn add_cost<S: MdScalar>(rows: usize, cols: usize) -> KernelCost {
    let out = (rows * cols) as u64;
    let ops = OpCounts {
        add: out,
        ..OpCounts::ZERO
    };
    KernelCost::of::<S>(ops, 2 * out, out)
}

/// Householder `β, v` for a column of height `h`: norm reduction
/// (`h` multiply-adds), one square root, `h` divisions for the
/// normalization, a handful of scalar fixups.
pub fn beta_v_cost<S: MdScalar>(h: usize) -> KernelCost {
    let h64 = h as u64;
    // normalization multiplies by the reciprocal of v1 (one division),
    // rather than dividing each component
    let ops = OpCounts {
        add: h64 + 2,
        sub: 0,
        mul: 2 * h64 + 2,
        div: 2,
        sqrt: 2,
    };
    KernelCost::of::<S>(ops, h64, h64 + 1).with_eff(eff::BETA_V)
}

/// `w = β Rᴴ v` over a `h × m` panel slice (`m = n − ℓ` columns):
/// a transposed matrix-vector product with a multi-block sum reduction.
pub fn beta_rtv_cost<S: MdScalar>(h: usize, m: usize, block: usize) -> KernelCost {
    let (h64, m64, b) = (h as u64, m as u64, block.max(1) as u64);
    let ops = OpCounts {
        add: h64 * m64,
        sub: 0,
        mul: h64 * m64 + m64,
        div: 0,
        sqrt: 0,
    };
    KernelCost::of::<S>(ops, h64 * m64 + h64 + h64 * m64 / b, m64).with_eff(eff::BETA_RTV)
}

/// Rank-one update `R := R − v wᴴ` over `h × m`.
pub fn update_r_cost<S: MdScalar>(h: usize, m: usize) -> KernelCost {
    let (h64, m64) = (h as u64, m as u64);
    let ops = OpCounts {
        add: 0,
        sub: h64 * m64,
        mul: h64 * m64,
        div: 0,
        sqrt: 0,
    };
    KernelCost::of::<S>(ops, h64 * m64 + h64 + m64, h64 * m64).with_eff(eff::UPDATE_R)
}

/// One column of the WY aggregation:
/// `u = Yᴴ v` (ℓ dots of height `h`) then `z = −β (v + W u)`.
pub fn compute_w_cost<S: MdScalar>(h: usize, l: usize) -> KernelCost {
    let (h64, l64) = (h as u64, l as u64);
    let ops = OpCounts {
        add: 2 * h64 * l64 + h64,
        sub: 0,
        mul: 2 * h64 * l64 + h64,
        div: 0,
        sqrt: 0,
    };
    KernelCost::of::<S>(ops, 2 * h64 * l64 + 2 * h64, h64).with_eff(eff::COMPUTE_W)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidouble::{Dd, Qd};

    #[test]
    fn gemm_cost_counts_fused_pairs() {
        let c = gemm_cost::<Qd>(10, 10, 5, 5);
        assert_eq!(c.ops.mul, 500);
        assert_eq!(c.ops.add, 500);
        assert_eq!(c.elems_written, 100);
        // flops: 500 * (336 + 89)
        assert_eq!(c.flops_paper, 500.0 * (336.0 + 89.0));
    }

    #[test]
    fn broadcast_amortization_reduces_reads() {
        let wide = gemm_cost::<Dd>(100, 100, 50, 100);
        let narrow = gemm_cost::<Dd>(100, 100, 50, 1);
        assert!(wide.elems_read < narrow.elems_read);
    }

    #[test]
    fn beta_v_has_one_sqrt_pair() {
        let c = beta_v_cost::<Qd>(64);
        assert_eq!(c.ops.sqrt, 2);
        assert_eq!(c.ops.div, 2); // reciprocal-based normalization
        assert!(c.ops.mul >= 128);
    }

    #[test]
    fn add_cost_is_linear() {
        let a = add_cost::<Qd>(8, 8);
        let b = add_cost::<Qd>(16, 8);
        assert_eq!(2 * a.ops.add, b.ops.add);
    }
}
