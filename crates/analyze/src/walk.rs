//! Deterministic workspace file walker.
//!
//! Collects every `.rs` file under the workspace root, sorted by
//! relative path so diagnostics come out in one stable order (the
//! analyzer holds itself to the same determinism bar it enforces).
//! Skips build output (`target/`), the vendored offline stand-ins
//! (`vendor/` — third-party idiom, not ours to police), version
//! control internals, and the analyzer's own fixture corpus (which is
//! intentionally dirty).

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// All workspace `.rs` files as `(relative_path, contents)`, sorted by
/// path.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&p)?;
        out.push((rel, src));
    }
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
