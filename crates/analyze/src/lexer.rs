//! A hand-rolled Rust lexer, just deep enough for lint analysis.
//!
//! Produces a flat token stream (identifiers, punctuation, literals)
//! plus a separate comment list. The lexer's one job is to make the
//! lint passes immune to the classic grep failure modes: `.iter()`
//! inside a string literal, `unsafe` inside a doc comment, `'a` the
//! lifetime versus `'a'` the char, nested `/* /* */ */` blocks, and
//! raw strings `r#"..."#` with arbitrary hash fences. It does **not**
//! parse — the lint passes work on token shapes and brace depths.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Punctuation, longest-match (`==`, `::`, `->`, `{`, ...).
    Punct,
    /// Integer literal (including tuple indices after `.`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2.5f64`).
    Float,
    /// String / byte-string / raw-string literal (content dropped).
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — kept distinct so char detection stays honest.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment with its 1-based source line. `trailing` is true when
/// code precedes the comment on the same line (a trailing comment
/// annotates its own line; an own-line comment annotates the next).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment body with the `//` / `/*` fences stripped and trimmed.
    pub text: String,
    pub line: u32,
    pub trailing: bool,
}

/// Lex result: tokens and comments, both in source order.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so `==` never lexes as
/// `=` `=`. Only the operators the lints look at need to be exact;
/// everything else may fall through to single characters.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    // whether any token has been produced on the current line — drives
    // the `trailing` flag on comments
    let mut code_on_line = false;

    macro_rules! bump_lines {
        ($s:expr) => {
            for &c in $s {
                if c == b'\n' {
                    line += 1;
                }
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        // newline / whitespace
        if c == b'\n' {
            line += 1;
            code_on_line = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // line comment (doc comments included — they are comments too)
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            let mut body = &src[start..i];
            while let Some(s) = body.strip_prefix('/') {
                body = s;
            }
            let body = body.strip_prefix('!').unwrap_or(body);
            comments.push(Comment {
                text: body.trim().to_string(),
                line,
                trailing: code_on_line,
            });
            continue;
        }
        // block comment, nested
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start_line = line;
            let start = i + 2;
            let was_code = code_on_line;
            i += 2;
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                        code_on_line = false;
                    }
                    i += 1;
                }
            }
            let end = i.saturating_sub(2).max(start);
            comments.push(Comment {
                text: src[start..end].trim().to_string(),
                line: start_line,
                trailing: was_code,
            });
            continue;
        }
        // raw / byte strings: r"...", r#"..."#, br"...", b"..."
        if c == b'r' || c == b'b' {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && (b[j + 1] == b'r' || b[j + 1] == b'"') {
                j += 1;
            }
            if b[j] == b'r' && j + 1 < b.len() && (b[j + 1] == b'#' || b[j + 1] == b'"') {
                // raw string: count hashes, then scan to `"` + hashes
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    let tok_line = line;
                    k += 1;
                    let content_start = k;
                    'raw: while k < b.len() {
                        if b[k] == b'"' {
                            let mut h = 0usize;
                            while k + 1 + h < b.len() && b[k + 1 + h] == b'#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                break 'raw;
                            }
                        }
                        k += 1;
                    }
                    bump_lines!(&b[content_start..k.min(b.len())]);
                    i = (k + 1 + hashes).min(b.len());
                    tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    code_on_line = true;
                    continue;
                }
            }
            if j > i && b[j] == b'"' {
                // plain byte string b"..." — fall through to the string
                // scanner from the quote
                i = j;
            }
        }
        // plain string
        if b[i] == b'"' {
            let tok_line = line;
            let mut k = i + 1;
            while k < b.len() {
                match b[k] {
                    b'\\' => k += 2,
                    b'"' => break,
                    b'\n' => {
                        line += 1;
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            i = (k + 1).min(b.len());
            tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: tok_line,
            });
            code_on_line = true;
            continue;
        }
        // char literal vs lifetime
        if c == b'\'' {
            // a char literal closes with a quote shortly after; a
            // lifetime is `'` + ident with no closing quote
            let mut k = i + 1;
            if k < b.len() && b[k] == b'\\' {
                k += 2;
                while k < b.len() && b[k] != b'\'' {
                    k += 1;
                }
                i = (k + 1).min(b.len());
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                code_on_line = true;
                continue;
            }
            // unescaped: 'x' (char) or 'ident (lifetime)
            let ident_start = k;
            while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                k += 1;
            }
            if k < b.len() && b[k] == b'\'' && k > ident_start {
                i = k + 1;
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else if k == ident_start && k < b.len() && b[k + 1..].first() == Some(&b'\'') {
                // non-alphanumeric single char like '('
                i = k + 2;
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else {
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: src[ident_start..k].to_string(),
                    line,
                });
                i = k;
            }
            code_on_line = true;
            continue;
        }
        // number
        if c.is_ascii_digit() {
            let start = i;
            let mut kind = TokKind::Int;
            if c == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
                i += 2;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // fractional part: digit '.' digit (never `..` ranges,
                // never `.method()` / `.0` tuple access)
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    kind = TokKind::Float;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                // exponent
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut k = i + 1;
                    if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
                        k += 1;
                    }
                    if k < b.len() && b[k].is_ascii_digit() {
                        kind = TokKind::Float;
                        i = k;
                        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    }
                }
                // suffix
                for suf in ["f64", "f32"] {
                    if src[i..].starts_with(suf) {
                        kind = TokKind::Float;
                        i += suf.len();
                        break;
                    }
                }
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1; // integer suffixes like u64, usize
                }
            }
            tokens.push(Token {
                kind,
                text: src[start..i].to_string(),
                line,
            });
            code_on_line = true;
            continue;
        }
        // identifier / keyword (incl. raw idents r#type)
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
            code_on_line = true;
            continue;
        }
        // punctuation, longest match first
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        let p = matched.map(|p| p.to_string()).unwrap_or_else(|| {
            let ch = rest.chars().next().unwrap();
            ch.to_string()
        });
        i += p.len();
        tokens.push(Token {
            kind: TokKind::Punct,
            text: p,
            line,
        });
        code_on_line = true;
    }

    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex("let s = \".iter() unsafe\"; x.get(0)");
        assert!(l.tokens.iter().all(|t| t.text != "iter"));
        assert!(l.tokens.iter().any(|t| t.text == "get"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex("let s = r#\"for x in map \"quoted\" more\"#; y");
        assert!(l.tokens.iter().all(|t| t.text != "for"));
        assert!(l.tokens.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = ks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ real");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "real");
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn floats_ints_and_ranges() {
        let ks = kinds("1.5 2 0..10 1e-9 3f64 x.0");
        assert_eq!(ks[0].0, TokKind::Float);
        assert_eq!(ks[1].0, TokKind::Int);
        assert_eq!(ks[2].0, TokKind::Int); // 0
        assert_eq!(ks[3].1, ".."); // not a float dot
        assert_eq!(ks[5].0, TokKind::Float); // 1e-9
        assert_eq!(ks[6].0, TokKind::Float); // 3f64
                                             // tuple index stays an Int after the dot
        let last = ks.last().unwrap();
        assert_eq!(last.0, TokKind::Int);
        assert_eq!(last.1, "0");
    }

    #[test]
    fn comment_trailing_flag_and_lines() {
        let l = lex("let x = 1; // trailing\n// own line\nlet y = 2;\n");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].line, 1);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn multichar_punct_is_atomic() {
        let ks = kinds("a == b != c <= d :: e -> f");
        let puncts: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", "::", "->"]);
    }
}
