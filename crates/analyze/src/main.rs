#![forbid(unsafe_code)]
//! `mdls-analyze` — the workspace lint gate.
//!
//! ```text
//! mdls-analyze check [--json] [ROOT]   # analyze the workspace (default ROOT: .)
//! mdls-analyze lints                   # print the lint/policy table
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use mdls_analyze::{analyze_workspace, lints};

fn usage() -> ExitCode {
    eprintln!("usage: mdls-analyze check [--json] [ROOT]\n       mdls-analyze lints");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lints") => {
            for l in lints::LINTS {
                println!("{:<24} {}", l.id, l.summary);
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
                    _ => return usage(),
                }
            }
            let root = root.unwrap_or_else(|| PathBuf::from("."));
            match analyze_workspace(&root) {
                Ok((findings, scanned)) => {
                    let rendered = if json {
                        mdls_analyze::report::render_json(&findings, scanned)
                    } else {
                        mdls_analyze::report::render_human(&findings, scanned)
                    };
                    print!("{rendered}");
                    if findings.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("mdls-analyze: {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
