#![forbid(unsafe_code)]
//! # mdls-analyze
//!
//! A self-contained static-analysis pass over this workspace's Rust
//! sources, enforcing the invariants the paper reproduction's
//! load-bearing guarantee (bit-identical, placement-invariant
//! multi-double solutions) actually rests on — invariants that rustc
//! and clippy cannot see because they live in *this* codebase's
//! contracts, not the language's:
//!
//! * hash-ordered containers are never traversed in determinism-
//!   bearing crates ([`lints::MAP_ITERATION_ORDER`]);
//! * simulation code never reads the host clock
//!   ([`lints::WALL_CLOCK_IN_SIM`]);
//! * no observer emit site runs under a `MutexGuard`
//!   ([`lints::LOCK_ACROSS_EMIT`]);
//! * every `unsafe` block/impl documents its contract
//!   ([`lints::UNDOCUMENTED_UNSAFE`]);
//! * floats are never compared exactly outside the error-free-
//!   transform crates ([`lints::FLOAT_EQ_OUTSIDE_CORE`]);
//! * fault/chaos/recovery code draws only from seeded sources
//!   ([`lints::NONDETERMINISTIC_FAULT_SOURCE`]).
//!
//! The analyzer is a hand-rolled lexer ([`lexer`]) plus token-scope
//! passes ([`lints`]) — no external dependencies, because the
//! workspace builds offline. Findings render as clickable
//! `file:line: [lint-id] message` lines or JSON ([`report`]); the
//! binary exits non-zero on any finding so CI gates on it.
//!
//! Suppressions are scoped and must be justified:
//! `// analyze::allow(lint-id): reason`. A bare allow, an allow naming
//! an unknown lint, or an allow that suppresses nothing are all
//! findings themselves — the exception list can only shrink.

pub mod lexer;
pub mod lints;
pub mod report;
pub mod walk;

use std::collections::BTreeSet;
use std::path::Path;

use report::Finding;

/// Analyze every `.rs` file under `root`. Returns the sorted findings
/// and the number of files scanned.
pub fn analyze_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = walk::workspace_files(root)?;
    // pass 1: the float-name tables the float-eq lint resolves operand
    // types against. Field/binding declarations (`name: f64`) are
    // scoped to their own crate — common names like `device` mean
    // different types in different crates — while fn-return names
    // (`fn wall_ms(..) -> f64`) are cross-crate API and stay global.
    let mut per_crate: std::collections::BTreeMap<&str, BTreeSet<String>> = Default::default();
    let mut fn_names = BTreeSet::new();
    for (rel, src) in &files {
        let Some(krate) = lints::crate_of(rel) else {
            continue;
        };
        lints::collect_float_names(src, per_crate.entry(krate).or_default(), &mut fn_names);
    }
    // pass 2: per-file lints under the per-crate policy
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for (rel, src) in &files {
        let Some(krate) = lints::crate_of(rel) else {
            continue;
        };
        scanned += 1;
        let mut names = per_crate.get(krate).cloned().unwrap_or_default();
        names.extend(fn_names.iter().cloned());
        findings.extend(lints::analyze_source(rel, krate, src, &names));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok((findings, scanned))
}

/// Analyze one source string as if it lived at `rel` in crate `krate`,
/// deriving the float-name tables from the source itself. The fixture
/// tests run on exactly this entry point.
pub fn analyze_str(rel: &str, krate: &str, src: &str) -> Vec<Finding> {
    let mut names = BTreeSet::new();
    let mut fns = BTreeSet::new();
    lints::collect_float_names(src, &mut names, &mut fns);
    names.extend(fns);
    lints::analyze_source(rel, krate, src, &names)
}
