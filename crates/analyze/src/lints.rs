//! The lint passes and the per-crate policy table.
//!
//! Every lint here is grounded in a real hazard of this reproduction
//! (see the README's "Static analysis" section for the full story):
//!
//! * [`MAP_ITERATION_ORDER`] — bit-identity and placement invariance
//!   die the day someone traverses a `HashMap` in plan or schedule
//!   code: iteration order varies per process, so any order-dependent
//!   result varies per run.
//! * [`WALL_CLOCK_IN_SIM`] — the pipeline runs on *simulated* clocks;
//!   a stray `Instant::now()` silently couples results to host load.
//! * [`LOCK_ACROSS_EMIT`] — the observer contract is "inert": an
//!   emit site that holds a planner/cache `MutexGuard` hands every
//!   observer a loaded gun (re-entering the planner deadlocks).
//! * [`UNDOCUMENTED_UNSAFE`] — every `unsafe` block or impl must carry
//!   an adjacent `// Safety:` comment naming its contract.
//! * [`FLOAT_EQ_OUTSIDE_CORE`] — `==`/`!=` on floats is legitimate in
//!   the error-free-transform kernels (`multidouble`, `matrix`), and a
//!   latent bug everywhere else.
//! * [`TIMELINE_MUTATION_OUTSIDE_POOL`] — the per-lane interval lists
//!   carry the pool's sorted/disjoint/cursor-at-tail invariants;
//!   touching `.intervals` with a container mutator anywhere but
//!   `pool.rs`'s own `Timeline` API bypasses the invariant checks.
//! * [`NONDETERMINISTIC_FAULT_SOURCE`] — chaotic runs are reproducible
//!   only while every fault schedule and recovery decision replays
//!   from a seed; one `thread_rng()` or `Instant::now()` in
//!   fault/chaos/recovery code and the same chaos run never happens
//!   twice.
//! * [`UNBOUNDED_SERVICE_QUEUE`] — the service shell's overload story
//!   (reject / shed-oldest / block) only holds while every ingress and
//!   backlog queue is bounded; one unguarded `push_back` in service
//!   code and a bursty tenant grows memory without ever tripping
//!   backpressure.
//!
//! Suppression grammar: `// analyze::allow(lint-id): reason`. The
//! reason is mandatory — a bare allow is itself a finding — and an
//! allow that suppresses nothing is flagged too, so the corpus of
//! exceptions can only shrink.

use std::collections::BTreeSet;

use crate::lexer::{lex, Comment, TokKind, Token};
use crate::report::Finding;

pub const MAP_ITERATION_ORDER: &str = "map-iteration-order";
pub const WALL_CLOCK_IN_SIM: &str = "wall-clock-in-sim";
pub const LOCK_ACROSS_EMIT: &str = "lock-across-emit";
pub const UNDOCUMENTED_UNSAFE: &str = "undocumented-unsafe";
pub const FLOAT_EQ_OUTSIDE_CORE: &str = "float-eq-outside-core";
pub const TIMELINE_MUTATION_OUTSIDE_POOL: &str = "timeline-mutation-outside-pool";
pub const NONDETERMINISTIC_FAULT_SOURCE: &str = "nondeterministic-fault-source";
pub const UNBOUNDED_SERVICE_QUEUE: &str = "unbounded-service-queue";
pub const BARE_ALLOW: &str = "bare-allow";
pub const UNKNOWN_LINT: &str = "unknown-lint";
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Which crates a lint applies to.
pub enum Scope {
    /// Every workspace crate.
    All,
    /// Only the named crates.
    Only(&'static [&'static str]),
    /// Every crate except the named ones.
    Except(&'static [&'static str]),
}

impl Scope {
    fn applies(&self, krate: &str) -> bool {
        match self {
            Scope::All => true,
            Scope::Only(list) => list.contains(&krate),
            Scope::Except(list) => !list.contains(&krate),
        }
    }
}

/// One lint's identity and policy.
pub struct LintDef {
    pub id: &'static str,
    pub scope: Scope,
    /// Skip `#[cfg(test)]` modules and `tests/`/`benches/` files.
    pub skip_tests: bool,
    pub summary: &'static str,
}

/// The policy table: which lint runs where. One place to read, one
/// place to change.
pub const LINTS: &[LintDef] = &[
    LintDef {
        id: MAP_ITERATION_ORDER,
        scope: Scope::Only(&["pipeline", "gpusim", "core", "obs"]),
        skip_tests: false,
        summary: "no order-dependent traversal of HashMap/HashSet in determinism-bearing crates",
    },
    LintDef {
        id: WALL_CLOCK_IN_SIM,
        scope: Scope::Except(&["bench", "analyze"]),
        skip_tests: false,
        summary: "no Instant::now/SystemTime/thread::sleep outside the bench crate (simulated clocks only)",
    },
    LintDef {
        id: LOCK_ACROSS_EMIT,
        scope: Scope::All,
        skip_tests: false,
        summary: "no MutexGuard live across an .emit(..) observer call",
    },
    LintDef {
        id: UNDOCUMENTED_UNSAFE,
        scope: Scope::All,
        skip_tests: false,
        summary: "every unsafe block/impl carries an adjacent // Safety: comment",
    },
    LintDef {
        id: FLOAT_EQ_OUTSIDE_CORE,
        scope: Scope::Except(&["multidouble", "matrix"]),
        skip_tests: true,
        summary: "no ==/!= on float expressions outside the error-free-transform crates",
    },
    LintDef {
        id: TIMELINE_MUTATION_OUTSIDE_POOL,
        scope: Scope::Only(&["pipeline"]),
        skip_tests: false,
        summary: "lane interval lists mutate only through pool.rs's Timeline API",
    },
    LintDef {
        id: NONDETERMINISTIC_FAULT_SOURCE,
        scope: Scope::All,
        skip_tests: false,
        summary: "fault/chaos/recovery code draws only from seeded sources — no ambient RNG, no host clocks",
    },
    LintDef {
        id: UNBOUNDED_SERVICE_QUEUE,
        scope: Scope::Only(&["pipeline"]),
        skip_tests: true,
        summary: "service-shell queues grow only behind a len/capacity/is_full guard (bounded ingress)",
    },
];

/// Look a lint up by id.
pub fn lint_by_id(id: &str) -> Option<&'static LintDef> {
    LINTS.iter().find(|l| l.id == id)
}

/// Map a workspace-relative path to its crate name, or `None` when the
/// file is out of scope (vendored stand-ins, build output, the
/// analyzer's own intentionally-dirty fixture corpus).
pub fn crate_of(rel: &str) -> Option<&str> {
    let rel = rel.trim_start_matches("./");
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.contains("/fixtures/") {
        return None;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("src/") || rel.starts_with("tests/") || rel.starts_with("examples/") {
        return Some("multidouble-ls");
    }
    None
}

/// Whether a path is test-only by location.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

/// Fault-tolerance code by file name — the files whose nondeterminism
/// the [`NONDETERMINISTIC_FAULT_SOURCE`] lint polices. Path-scoped
/// rather than crate-scoped: chaos harnesses live in `bench` (where the
/// wall-clock lint is off) and recovery code in `pipeline`, but both
/// must replay from seeds.
fn is_fault_path(rel: &str) -> bool {
    let file = rel.rsplit('/').next().unwrap_or(rel);
    ["fault", "chaos", "resilient", "recovery"]
        .iter()
        .any(|k| file.contains(k))
}

/// Service-shell code by file name — the files whose queue growth the
/// [`UNBOUNDED_SERVICE_QUEUE`] lint polices. Path-scoped like
/// [`is_fault_path`]: the bounded-ingress contract belongs to the
/// multi-tenant shell, not to every `VecDeque` in the pipeline.
fn is_service_path(rel: &str) -> bool {
    rel.rsplit('/').next().unwrap_or(rel).contains("service")
}

// ---------------------------------------------------------------------
// suppression grammar
// ---------------------------------------------------------------------

struct Allow {
    lint: String,
    has_reason: bool,
    line: u32,
    target_line: Option<u32>,
    used: bool,
}

/// Parse `analyze::allow(lint-id): reason` comments. `code_lines` maps
/// an own-line allow to the next line holding code.
fn parse_allows(comments: &[Comment], code_lines: &BTreeSet<u32>) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.strip_prefix("analyze::allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let lint = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        let has_reason = tail
            .strip_prefix(':')
            .map(|r| !r.trim().is_empty())
            .unwrap_or(false);
        let target_line = if c.trailing {
            Some(c.line)
        } else {
            code_lines.range(c.line + 1..).next().copied()
        };
        out.push(Allow {
            lint,
            has_reason,
            line: c.line,
            target_line,
            used: false,
        });
    }
    out
}

// ---------------------------------------------------------------------
// token-scope helpers
// ---------------------------------------------------------------------

fn is(t: &Token, s: &str) -> bool {
    t.text == s
}

/// Index of the brace/bracket/paren closing the one at `open`.
fn matching(toks: &[Token], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the paren/bracket *opening* the one closing at `close`,
/// scanning backwards.
fn matching_back(toks: &[Token], close: usize) -> usize {
    let (o, c) = match toks[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        "}" => ("{", "}"),
        _ => return close,
    };
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            if t.text == c {
                depth += 1;
            } else if t.text == o {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    0
}

/// Token-index spans of `#[cfg(test)] mod ... { ... }` bodies.
fn cfg_test_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 4 < toks.len() {
        if is(&toks[i], "#")
            && is(&toks[i + 1], "[")
            && is(&toks[i + 2], "cfg")
            && is(&toks[i + 3], "(")
        {
            let close_paren = matching(toks, i + 3);
            let has_test = toks[i + 4..close_paren].iter().any(|t| t.text == "test");
            let mut j = matching(toks, i + 1) + 1; // past the `]`
            if has_test {
                // skip further attributes
                while j + 1 < toks.len() && is(&toks[j], "#") && is(&toks[j + 1], "[") {
                    j = matching(toks, j + 1) + 1;
                }
                // pub? mod name {
                if j < toks.len() && is(&toks[j], "pub") {
                    j += 1;
                    if j < toks.len() && is(&toks[j], "(") {
                        j = matching(toks, j) + 1;
                    }
                }
                if j + 2 < toks.len() && is(&toks[j], "mod") && is(&toks[j + 2], "{") {
                    let open = j + 2;
                    spans.push((open, matching(toks, open)));
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

// ---------------------------------------------------------------------
// workspace pass 1: names that denote floats
// ---------------------------------------------------------------------

/// Collect identifiers `src` declares as `f64`/`f32` — struct fields,
/// let bindings and fn params (`name: f64`) go into `decls`; functions
/// returning floats (`fn name(..) -> f64`) go into `fns`. The split
/// matters for scoping: fn names are cross-crate API (`wall_ms()`
/// reads as a float anywhere), while field/binding names are only
/// trustworthy within their own crate — `device` is an `f64` cursor in
/// one crate and a `usize` id in another.
pub fn collect_float_names(src: &str, decls: &mut BTreeSet<String>, fns: &mut BTreeSet<String>) {
    let toks = lex(src).tokens;
    let mut last_fn_name: Option<String> = None;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "fn" {
            if let Some(n) = toks.get(i + 1) {
                if n.kind == TokKind::Ident {
                    last_fn_name = Some(n.text.clone());
                }
            }
            continue;
        }
        if t.text == "f64" || t.text == "f32" {
            // `name : [& mut] f64`
            let mut j = i;
            while j > 0 && (is(&toks[j - 1], "&") || is(&toks[j - 1], "mut")) {
                j -= 1;
            }
            // short names (`p`, `x`, `ms`) collide with non-float
            // locals all over a numeric workspace; only names of three
            // or more characters are specific enough to trust
            if j >= 2 && is(&toks[j - 1], ":") && toks[j - 2].kind == TokKind::Ident {
                let name = &toks[j - 2].text;
                if name.len() >= 3 {
                    decls.insert(name.clone());
                }
            }
            // `fn name(..) -> [& mut] f64`
            if j >= 1 && is(&toks[j - 1], "->") {
                if let Some(n) = &last_fn_name {
                    if n.len() >= 3 {
                        fns.insert(n.clone());
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// the per-file analysis
// ---------------------------------------------------------------------

/// Run every applicable lint over one file. `float_names` comes from
/// [`collect_float_names`] over the whole workspace.
pub fn analyze_source(
    rel: &str,
    krate: &str,
    src: &str,
    float_names: &BTreeSet<String>,
) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let mut allows = parse_allows(&lexed.comments, &code_lines);
    let test_spans = cfg_test_spans(toks);
    let path_is_test = is_test_path(rel);

    let mut raw: Vec<Finding> = Vec::new();
    let enabled = |id: &str| {
        lint_by_id(id)
            .map(|l| l.scope.applies(krate))
            .unwrap_or(false)
    };
    let skip_tests = |id: &str| lint_by_id(id).map(|l| l.skip_tests).unwrap_or(false);

    if enabled(MAP_ITERATION_ORDER) {
        lint_map_iteration(rel, toks, &mut raw);
    }
    if enabled(WALL_CLOCK_IN_SIM) {
        lint_wall_clock(rel, toks, &mut raw);
    }
    if enabled(LOCK_ACROSS_EMIT) {
        lint_lock_across_emit(rel, toks, &mut raw);
    }
    if enabled(UNDOCUMENTED_UNSAFE) {
        lint_undocumented_unsafe(rel, toks, &lexed.comments, &mut raw);
    }
    if enabled(FLOAT_EQ_OUTSIDE_CORE) {
        lint_float_eq(rel, toks, float_names, &mut raw);
    }
    // pool.rs *is* the Timeline API — the invariant-checked mutators
    // live there, so the one exemption is exact-path
    if enabled(TIMELINE_MUTATION_OUTSIDE_POOL)
        && rel.trim_start_matches("./") != "crates/pipeline/src/pool.rs"
    {
        lint_timeline_mutation(rel, toks, &mut raw);
    }
    // fault.rs *is* the seeded FaultPlan source — the one file allowed
    // to wrap an entropy primitive behind a recorded seed, so (as with
    // pool.rs above) the exemption is exact-path
    if enabled(NONDETERMINISTIC_FAULT_SOURCE)
        && is_fault_path(rel)
        && rel.trim_start_matches("./") != "crates/gpusim/src/fault.rs"
    {
        lint_nondeterministic_fault(rel, toks, &mut raw);
    }
    // the service shell's overload ladder assumes every ingress and
    // backlog queue is bounded — growth in service files must sit
    // behind a capacity check
    if enabled(UNBOUNDED_SERVICE_QUEUE) && is_service_path(rel) {
        lint_unbounded_service_queue(rel, toks, &mut raw);
    }

    // drop findings of skip_tests lints that landed in test code
    raw.retain(|f| {
        if !skip_tests(f.lint) {
            return true;
        }
        if path_is_test {
            return false;
        }
        // token-index spans → line check: a finding inside a
        // #[cfg(test)] mod is dropped
        !test_spans.iter().any(|&(a, b)| {
            let (lo, hi) = (toks[a].line, toks[b].line);
            f.line >= lo && f.line <= hi
        })
    });

    // apply suppressions
    let mut findings: Vec<Finding> = Vec::new();
    'f: for f in raw {
        for a in allows.iter_mut() {
            if a.lint == f.lint && a.target_line == Some(f.line) && a.has_reason {
                a.used = true;
                continue 'f;
            }
        }
        findings.push(f);
    }

    // the suppression grammar's own rules
    for a in &allows {
        if lint_by_id(&a.lint).is_none() {
            findings.push(Finding::new(
                rel,
                a.line,
                UNKNOWN_LINT,
                format!("allow names unknown lint `{}`", a.lint),
            ));
            continue;
        }
        if !a.has_reason {
            findings.push(Finding::new(
                rel,
                a.line,
                BARE_ALLOW,
                format!(
                    "allow({}) without a reason — write `// analyze::allow({}): why`",
                    a.lint, a.lint
                ),
            ));
            continue;
        }
        if !a.used {
            findings.push(Finding::new(
                rel,
                a.line,
                UNUSED_ALLOW,
                format!("allow({}) suppresses nothing — remove it", a.lint),
            ));
        }
    }

    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

// ---------------------------------------------------------------------
// individual lints
// ---------------------------------------------------------------------

const MAP_TYPES: &[&str] = &["HashMap", "HashSet"];
const ORDER_DEPENDENT: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Names in this file bound to a `HashMap`/`HashSet`: fields and
/// bindings declared `name: ..HashMap<..`, and `name = HashMap::new()`
/// style initializers.
fn map_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !MAP_TYPES.contains(&toks[i].text.as_str()) {
            continue;
        }
        // walk back over type-path noise to the declaring `:` or `=`
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            let skip = p.text == "::"
                || p.text == "<"
                || p.text == "&"
                || p.text == "mut"
                || (p.kind == TokKind::Ident && p.text != "let");
            if !skip {
                break;
            }
            j -= 1;
        }
        if j >= 2 && (is(&toks[j - 1], ":") || is(&toks[j - 1], "=")) {
            let mut k = j - 1;
            // `name : Ty` / `name = init` / `name : Ty = init`
            if is(&toks[k], "=") {
                // skip back over a type annotation if present
                let mut depth = 0i32;
                while k > 0 {
                    let t = &toks[k - 1];
                    match t.text.as_str() {
                        ">" | ">>" => depth += 1,
                        "<" => depth -= 1,
                        ":" if depth == 0 => {
                            k -= 1;
                            break;
                        }
                        ";" | "{" | "}" => break,
                        _ => {}
                    }
                    if depth < 0 {
                        break;
                    }
                    k -= 1;
                }
            }
            if k >= 1
                && (is(&toks[k], ":") || is(&toks[k], "="))
                && toks[k - 1].kind == TokKind::Ident
            {
                names.insert(toks[k - 1].text.clone());
            }
        }
    }
    names
}

/// The object a method chain ending at `dot` (the `.` of a call)
/// actually operates on: walk left *through* method calls — `.lock()`,
/// `.unwrap()` and friends hand the same underlying object along — and
/// stop at the first plain field/variable segment, which is the
/// receiver. `fused.stage_wall_ms.iter()` iterates `stage_wall_ms`,
/// not `fused`; `self.cache.lock().unwrap().iter()` iterates `cache`.
fn chain_receiver(toks: &[Token], dot: usize) -> Option<String> {
    let mut i = dot; // index of the `.`
    loop {
        if i == 0 {
            return None;
        }
        let prev = i - 1;
        match toks[prev].kind {
            TokKind::Ident => return Some(toks[prev].text.clone()),
            TokKind::Punct if toks[prev].text == ")" || toks[prev].text == "]" => {
                // a call or index — skip over it and its callee name,
                // staying on the same logical object
                let open = matching_back(toks, prev);
                if open == 0 {
                    return None;
                }
                i = open;
                if toks[prev].text == ")" && toks[i - 1].kind == TokKind::Ident {
                    i -= 1; // past the method name
                }
            }
            _ => return None,
        }
        // continue only across `.` / `::`
        if i == 0 {
            return None;
        }
        let link = &toks[i - 1];
        if link.text == "." || link.text == "::" {
            i -= 1;
        } else {
            return None;
        }
    }
}

fn lint_map_iteration(rel: &str, toks: &[Token], out: &mut Vec<Finding>) {
    let names = map_names(toks);
    for i in 0..toks.len() {
        // `.method(` with an order-dependent method on a known map
        if toks[i].text == "."
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && ORDER_DEPENDENT.contains(&toks[i + 1].text.as_str())
            && is(&toks[i + 2], "(")
        {
            let receiver = chain_receiver(toks, i);
            if let Some(hit) = receiver.filter(|r| names.contains(r)) {
                out.push(Finding::new(
                    rel,
                    toks[i + 1].line,
                    MAP_ITERATION_ORDER,
                    format!(
                        "`.{}()` on hash-ordered `{}` — iteration order varies per process; \
                         use first-appearance bucketing or a sorted/BTree container",
                        toks[i + 1].text,
                        hit
                    ),
                ));
            }
        }
        // `for pat in [&[mut]] map {`
        if is(&toks[i], "for") && toks[i].kind == TokKind::Ident {
            // find the `in` at depth 0 before the body `{`
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "in" if depth == 0 => break,
                    "{" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() && is(&toks[j], "in") {
                // expr tokens up to the body `{`
                let mut k = j + 1;
                let mut expr = Vec::new();
                let mut d = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d -= 1,
                        "{" if d == 0 => break,
                        _ => {}
                    }
                    expr.push(k);
                    k += 1;
                }
                // flag only a bare `&`/`&mut` map ident — chains with
                // methods are handled by the method rule above, and
                // things like `0..map.len()` must not trip
                let idents: Vec<&Token> = expr
                    .iter()
                    .map(|&x| &toks[x])
                    .filter(|t| !(t.text == "&" || t.text == "mut"))
                    .collect();
                if idents.len() == 1
                    && idents[0].kind == TokKind::Ident
                    && names.contains(&idents[0].text)
                {
                    out.push(Finding::new(
                        rel,
                        idents[0].line,
                        MAP_ITERATION_ORDER,
                        format!(
                            "`for .. in {}` iterates a hash-ordered container — order varies \
                             per process",
                            idents[0].text
                        ),
                    ));
                }
            }
        }
    }
}

fn lint_wall_clock(rel: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "Instant" | "SystemTime" => {
                // flag the read (`::now`), not the mere import
                i + 2 < toks.len() && is(&toks[i + 1], "::") && is(&toks[i + 2], "now")
            }
            "thread" => i + 2 < toks.len() && is(&toks[i + 1], "::") && is(&toks[i + 2], "sleep"),
            _ => false,
        };
        if hit {
            out.push(Finding::new(
                rel,
                t.line,
                WALL_CLOCK_IN_SIM,
                format!(
                    "`{}::{}` reads the host clock — sim code must use simulated time only",
                    t.text,
                    toks[i + 2].text
                ),
            ));
        }
    }
}

/// Entropy and host-clock reads that make a chaos run unrepeatable.
/// Seeded constructors (`seed_from_u64`, `StdRng::from_seed`,
/// `FaultPlan::seeded`) are fine — only the ambient sources trip.
fn lint_nondeterministic_fault(rel: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let double = |a: &str| i + 2 < toks.len() && is(&toks[i + 1], "::") && is(&toks[i + 2], a);
        let what = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "seed_from_entropy" | "OsRng" => {
                format!("`{}` draws from ambient process entropy", t.text)
            }
            "rand" if double("random") => "`rand::random` draws from the thread RNG".to_string(),
            "Instant" | "SystemTime" if double("now") => {
                format!("`{}::now` reads the host clock", t.text)
            }
            _ => continue,
        };
        out.push(Finding::new(
            rel,
            t.line,
            NONDETERMINISTIC_FAULT_SOURCE,
            format!(
                "{what} — fault schedules and recovery decisions must replay from recorded \
                 seeds (FaultPlan::seeded / seed_from_u64) so chaotic runs stay reproducible"
            ),
        ));
    }
}

/// Words a guard header must mention for queue growth to count as
/// bounded. `len`/`capacity` cover the direct comparison forms
/// (`q.len() < cap`); `is_full` covers a named predicate.
const CAPACITY_WORDS: &[&str] = &["len", "capacity", "is_full"];

/// Receiver names that denote an ingress/backlog queue for the
/// `.push(..)` rule. `.push_back(..)` needs no name filter: in service
/// code a `VecDeque` *is* a queue, whatever it is called.
const QUEUE_WORDS: &[&str] = &["queue", "pending", "backlog", "inbox"];

/// Token range of the header introducing the block opening at `open`:
/// everything back to the previous statement boundary, exclusive of
/// the brace itself.
fn block_header(toks: &[Token], open: usize) -> (usize, usize) {
    let mut s = open;
    while s > 0 {
        match toks[s - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => s -= 1,
        }
    }
    (s, open)
}

/// Does the block opening at `open` sit behind a capacity check — an
/// `if`/`while` (or `else` branch of one) whose header names one of
/// [`CAPACITY_WORDS`]? A bare `else` inherits its `if`'s header: in
/// `if q.len() >= cap { .. } else { q.push_back(v) }` the else arm is
/// exactly the under-capacity branch.
fn header_guards(toks: &[Token], open: usize) -> bool {
    let (mut s, mut o) = block_header(toks, open);
    if s + 1 == o && is(&toks[s], "else") {
        if s == 0 || !is(&toks[s - 1], "}") {
            return false;
        }
        let if_open = matching_back(toks, s - 1);
        (s, o) = block_header(toks, if_open);
    }
    if s >= o {
        return false;
    }
    let head = toks[s].text.as_str();
    if !(head == "if" || head == "while" || head == "else") {
        return false;
    }
    toks[s..o]
        .iter()
        .any(|t| t.kind == TokKind::Ident && CAPACITY_WORDS.contains(&t.text.as_str()))
}

/// Walk outward through the blocks enclosing token `i` until one of
/// their headers is a capacity guard. Outward (not nearest-only)
/// because the guard legitimately sits above intervening structure:
/// `if q.len() + batch.len() <= cap { for v in batch { q.push_back(v) } }`.
fn is_capacity_guarded(toks: &[Token], mut i: usize) -> bool {
    loop {
        let mut depth = 0i32;
        let mut open = None;
        for b in (0..i).rev() {
            match toks[b].text.as_str() {
                "}" => depth += 1,
                "{" => {
                    if depth == 0 {
                        open = Some(b);
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        let Some(open) = open else { return false };
        if header_guards(toks, open) {
            return true;
        }
        if open == 0 {
            return false;
        }
        i = open;
    }
}

/// Unguarded growth of a service-shell queue. `.push_back(..)` on any
/// receiver and `.push(..)` on a queue-named one must sit inside a
/// capacity-checked block — the bounded-ingress contract the overload
/// ladder (reject / shed-oldest / block) depends on.
fn lint_unbounded_service_queue(rel: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if !(toks[i].text == "."
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && is(&toks[i + 2], "("))
        {
            continue;
        }
        let method = toks[i + 1].text.as_str();
        let receiver = chain_receiver(toks, i);
        let queue_named = receiver
            .as_deref()
            .map(|r| QUEUE_WORDS.iter().any(|q| r.contains(q)))
            .unwrap_or(false);
        let hit = match method {
            "push_back" => true,
            "push" => queue_named,
            _ => false,
        };
        if !hit || is_capacity_guarded(toks, i) {
            continue;
        }
        out.push(Finding::new(
            rel,
            toks[i + 1].line,
            UNBOUNDED_SERVICE_QUEUE,
            format!(
                "`.{}(..)` grows `{}` without a capacity check — service ingress/backlog \
                 queues are bounded by contract; guard the push with len/capacity/is_full \
                 (see `push_bounded` in service.rs)",
                method,
                receiver.as_deref().unwrap_or("a service queue"),
            ),
        ));
    }
}

fn lint_lock_across_emit(rel: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        // `.lock()` call
        if !(toks[i].text == "."
            && i + 2 < toks.len()
            && toks[i + 1].text == "lock"
            && is(&toks[i + 2], "("))
        {
            continue;
        }
        let lock_line = toks[i + 1].line;
        // walk back to the statement start
        let mut start = i;
        while start > 0 {
            match toks[start - 1].text.as_str() {
                ";" | "{" | "}" => break,
                _ => start -= 1,
            }
        }
        let head = &toks[start];
        // chain after .lock(): which methods follow?
        let mut j = matching(toks, i + 2) + 1;
        let mut guard_persists = true; // `.unwrap()`/`.expect()` only
        while j + 2 < toks.len() && toks[j].text == "." && toks[j + 1].kind == TokKind::Ident {
            let m = toks[j + 1].text.as_str();
            if is(&toks[j + 2], "(") {
                if !(m == "unwrap" || m == "expect") {
                    guard_persists = false;
                }
                j = matching(toks, j + 2) + 1;
            } else {
                guard_persists = false;
                break;
            }
        }

        let (span, origin): (Option<(usize, usize)>, &str) = match head.text.as_str() {
            // condition temporaries live through the whole expression,
            // arms and all — even when the guard is chained further
            // (`..lock().unwrap().get(&k)` still borrows the guard)
            "if" | "while" | "match" => {
                let mut k = i;
                let mut d = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d -= 1,
                        "{" if d == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if k < toks.len() {
                    let mut end = matching(toks, k);
                    // chained else / else if blocks extend the span
                    while end + 1 < toks.len() && is(&toks[end + 1], "else") {
                        let mut b = end + 1;
                        while b < toks.len() && !is(&toks[b], "{") {
                            b += 1;
                        }
                        if b >= toks.len() {
                            break;
                        }
                        end = matching(toks, b);
                    }
                    (Some((k, end)), "a temporary guard in this condition")
                } else {
                    (None, "")
                }
            }
            "let" if guard_persists => {
                // named guard: live to the end of the enclosing block
                // (or an explicit drop)
                let mut name_idx = start + 1;
                if name_idx < toks.len() && is(&toks[name_idx], "mut") {
                    name_idx += 1;
                }
                let name = toks
                    .get(name_idx)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                // enclosing block: nearest unmatched `{` before start
                let mut depth = 0i32;
                let mut open = 0usize;
                for b in (0..start).rev() {
                    match toks[b].text.as_str() {
                        "}" => depth += 1,
                        "{" => {
                            if depth == 0 {
                                open = b;
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
                let mut end = matching(toks, open);
                // an explicit drop(name) releases it early
                for d in i..end {
                    if is(&toks[d], "drop")
                        && d + 2 < toks.len()
                        && is(&toks[d + 1], "(")
                        && toks[d + 2].text == name
                    {
                        end = d;
                        break;
                    }
                }
                (Some((i, end)), "a named guard binding")
            }
            _ => (None, ""), // plain statement: temporary dies at `;`
        };

        let Some((a, b)) = span else { continue };
        for e in a..=b.min(toks.len().saturating_sub(1)) {
            if toks[e].text == "."
                && e + 2 < toks.len()
                && toks[e + 1].text == "emit"
                && is(&toks[e + 2], "(")
            {
                out.push(Finding::new(
                    rel,
                    toks[e + 1].line,
                    LOCK_ACROSS_EMIT,
                    format!(
                        "`.emit(..)` runs while {} from `.lock()` (line {}) is still live — \
                         an observer that re-enters the lock deadlocks; drop the guard first",
                        origin, lock_line
                    ),
                ));
            }
        }
    }
}

fn lint_undocumented_unsafe(
    rel: &str,
    toks: &[Token],
    comments: &[Comment],
    out: &mut Vec<Finding>,
) {
    // line → comment texts, for adjacency checks
    let mut by_line: std::collections::BTreeMap<u32, Vec<&Comment>> =
        std::collections::BTreeMap::new();
    for c in comments {
        by_line.entry(c.line).or_default().push(c);
    }
    let has_safety = |line: u32| -> bool {
        // same line, or the contiguous own-line comment run above
        if let Some(cs) = by_line.get(&line) {
            if cs.iter().any(|c| c.text.starts_with("Safety:")) {
                return true;
            }
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            match by_line.get(&l) {
                Some(cs) => {
                    if cs.iter().any(|c| c.text.starts_with("Safety:")) {
                        return true;
                    }
                }
                None => return false,
            }
        }
        false
    };
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "unsafe") {
            continue;
        }
        let next = match toks.get(i + 1) {
            Some(n) => n,
            None => continue,
        };
        let what = match next.text.as_str() {
            "{" => "block",
            "impl" | "trait" => "impl",
            _ => continue, // `unsafe fn` is deny(unsafe_op_in_unsafe_fn)'s job
        };
        if !has_safety(toks[i].line) {
            out.push(Finding::new(
                rel,
                toks[i].line,
                UNDOCUMENTED_UNSAFE,
                format!(
                    "unsafe {what} without an adjacent `// Safety:` comment naming its contract"
                ),
            ));
        }
    }
}

/// Does the operand chain starting at token `i` (moving right) resolve
/// to a float? The chain's *terminal* segment determines the type
/// (`other.wall_ms()` is whatever `wall_ms` returns, no matter what
/// `other` is), so only the last ident of the `a.b.c()` / `A::B::c`
/// walk is checked — plus float literals and `f64::`/`f32::` paths.
fn rhs_is_float(toks: &[Token], mut i: usize, names: &BTreeSet<String>) -> bool {
    // skip unary noise
    while i < toks.len() && (toks[i].text == "-" || toks[i].text == "&" || toks[i].text == "(") {
        i += 1;
    }
    if i >= toks.len() {
        return false;
    }
    if toks[i].kind == TokKind::Ident && (toks[i].text == "f64" || toks[i].text == "f32") {
        return true; // f64::INFINITY and friends
    }
    let mut terminal: Option<&str> = None;
    let mut steps = 0;
    while i < toks.len() && steps < 24 {
        steps += 1;
        let t = &toks[i];
        match t.kind {
            TokKind::Float => return true,
            TokKind::Ident => {
                terminal = Some(&t.text);
                i += 1;
            }
            TokKind::Int => i += 1,
            TokKind::Punct if t.text == "." || t.text == "::" => i += 1,
            TokKind::Punct if t.text == "(" => {
                i = matching(toks, i) + 1;
            }
            _ => break,
        }
    }
    terminal.map(|t| names.contains(t)).unwrap_or(false)
}

/// Does the operand ending at token `i` (the token left of the
/// operator) resolve to a float? Terminal-segment typing, as in
/// [`rhs_is_float`]: the last field/method of the chain decides.
fn lhs_is_float(toks: &[Token], end: usize, names: &BTreeSet<String>) -> bool {
    let t = &toks[end];
    match t.kind {
        TokKind::Float => true,
        TokKind::Ident => names.contains(&t.text) || t.text == "f64" || t.text == "f32",
        TokKind::Punct if t.text == ")" => {
            // `..method()` — the called method is the terminal
            let open = matching_back(toks, end);
            open > 0
                && toks[open - 1].kind == TokKind::Ident
                && names.contains(&toks[open - 1].text)
        }
        _ => false,
    }
}

fn lint_float_eq(rel: &str, toks: &[Token], names: &BTreeSet<String>, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        if i == 0 || i + 1 >= toks.len() {
            continue;
        }
        if lhs_is_float(toks, i - 1, names) || rhs_is_float(toks, i + 1, names) {
            out.push(Finding::new(
                rel,
                t.line,
                FLOAT_EQ_OUTSIDE_CORE,
                format!(
                    "`{}` on a float expression — exact float comparison belongs to the \
                     error-free-transform crates; compare against a tolerance or justify \
                     the exactness",
                    t.text
                ),
            ));
        }
    }
}

/// Container calls that rewrite an interval list in place. Reads
/// (`len`, `iter`, `last`, `binary_search`, indexing without `=`) are
/// fine anywhere; these are not.
const TIMELINE_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "swap_remove",
    "retain",
    "clear",
    "drain",
    "truncate",
    "extend",
    "splice",
    "dedup",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
];

fn lint_timeline_mutation(rel: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "intervals") {
            continue;
        }
        // field access `.intervals` only — the `intervals()` accessor
        // returns a shared slice and binds nothing mutable
        if i == 0 || !is(&toks[i - 1], ".") {
            continue;
        }
        if i + 1 < toks.len() && is(&toks[i + 1], "(") {
            continue;
        }
        // `.intervals.<mutator>(`
        if i + 3 < toks.len()
            && is(&toks[i + 1], ".")
            && toks[i + 2].kind == TokKind::Ident
            && TIMELINE_MUTATORS.contains(&toks[i + 2].text.as_str())
            && is(&toks[i + 3], "(")
        {
            out.push(Finding::new(
                rel,
                toks[i + 2].line,
                TIMELINE_MUTATION_OUTSIDE_POOL,
                format!(
                    "`.intervals.{}(..)` outside pool.rs — lane interval lists keep their \
                     sorted/disjoint/cursor-at-tail invariants only when mutated through \
                     the Timeline API",
                    toks[i + 2].text
                ),
            ));
            continue;
        }
        // `&mut recv.intervals` — handing out a mutable borrow of the
        // list; walk back over the receiver chain (`self.devices[i].host`)
        let mut j = i - 1; // the `.` before `intervals`
        loop {
            if j == 0 {
                break;
            }
            let p = &toks[j - 1];
            if (p.kind == TokKind::Ident && p.text != "mut")
                || p.kind == TokKind::Int
                || is(p, ".")
                || is(p, "::")
            {
                j -= 1;
            } else if is(p, "]") {
                j = matching_back(toks, j - 1);
            } else {
                break;
            }
        }
        if j >= 2 && is(&toks[j - 1], "mut") && is(&toks[j - 2], "&") {
            out.push(Finding::new(
                rel,
                t.line,
                TIMELINE_MUTATION_OUTSIDE_POOL,
                "`&mut ..intervals` outside pool.rs — a mutable borrow of a lane's interval \
                 list bypasses the Timeline API's invariant checks"
                    .to_string(),
            ));
            continue;
        }
        // `.intervals[i] = ..` / `.intervals[i].0 = ..` — element overwrite
        if i + 1 < toks.len() && is(&toks[i + 1], "[") {
            let close = matching(toks, i + 1);
            let mut j = close + 1;
            // optional tuple-field projection `.0` / `.1`
            if j + 1 < toks.len() && is(&toks[j], ".") {
                j += 2;
            }
            if j < toks.len() && is(&toks[j], "=") {
                out.push(Finding::new(
                    rel,
                    t.line,
                    TIMELINE_MUTATION_OUTSIDE_POOL,
                    "assignment into `..intervals[..]` outside pool.rs — interval spans \
                     change only through the Timeline API"
                        .to_string(),
                ));
            }
        }
    }
}
