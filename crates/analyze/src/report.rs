//! Diagnostics and their renderings: clickable `file:line: [lint-id]
//! message` lines for humans, a dependency-free JSON array for tools.

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable lint id (kebab-case).
    pub lint: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, lint: &'static str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            lint,
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Render findings as human-readable lines plus a summary.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str(&format!("mdls-analyze: clean ({files_scanned} files)\n"));
    } else {
        out.push_str(&format!(
            "mdls-analyze: {} finding{} in {} file{} (of {} scanned)\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            distinct_files(findings),
            if distinct_files(findings) == 1 {
                ""
            } else {
                "s"
            },
            files_scanned
        ));
    }
    out
}

fn distinct_files(findings: &[Finding]) -> usize {
    let mut files: Vec<&str> = findings.iter().map(|f| f.file.as_str()).collect();
    files.sort_unstable();
    files.dedup();
    files.len()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON document for tooling:
/// `{"findings": [{file, line, lint, message}...], "count": N}`.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.lint,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"count\": {},\n  \"files_scanned\": {}\n}}\n",
        findings.len(),
        files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_line_is_clickable() {
        let f = Finding::new(
            "crates/x/src/lib.rs",
            42,
            "map-iteration-order",
            "msg".into(),
        );
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:42: [map-iteration-order] msg"
        );
    }

    #[test]
    fn json_escapes_quotes() {
        let f = Finding::new("a.rs", 1, "bare-allow", "say \"why\"".into());
        let j = render_json(&[f], 1);
        assert!(j.contains("say \\\"why\\\""));
        assert!(j.contains("\"count\": 1"));
    }

    #[test]
    fn clean_summary() {
        let h = render_human(&[], 12);
        assert!(h.contains("clean (12 files)"));
    }
}
