//! The analyzer's own gate, as a test: the workspace must be clean.
//!
//! This is the same pass CI runs (`mdls-analyze check`), asserted from
//! inside the test suite so `cargo test` alone catches a regression —
//! a new hash-map traversal in plan code, a host-clock read in the
//! simulator, an emit under a guard, an undocumented `unsafe`, an
//! exact float compare — before the workflow step does. Because the
//! meta-lints (`bare-allow`, `unknown-lint`, `unused-allow`) are
//! findings too, "clean" also proves every suppression in the tree
//! names a real lint, carries a written reason, and still suppresses
//! something.

use std::path::Path;

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let (findings, scanned) =
        mdls_analyze::analyze_workspace(&root).expect("workspace walk failed");
    assert!(
        scanned > 50,
        "suspiciously few files scanned ({scanned}) — did the walker lose the workspace root?"
    );
    assert!(
        findings.is_empty(),
        "mdls-analyze found {} invariant violation(s) in the workspace:\n{}\n\
         fix the code, or add `// analyze::allow(lint-id): reason` where the\n\
         exactness/lock/clock use is genuinely intended",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
