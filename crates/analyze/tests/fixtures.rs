//! The fixture corpus: every lint has a tripping and a clean fixture
//! under `tests/fixtures/`, lexed through [`mdls_analyze::analyze_str`]
//! exactly as the workspace pass would. Tripping fixtures carry
//! `// FINDING: lint-id` markers on the lines the analyzer must flag —
//! the expected set is read out of the fixture itself, so fixture and
//! expectation cannot drift apart.
//!
//! The fixture directory is named `fixtures` on purpose: both the
//! workspace walker and `crate_of` skip it, so the intentionally-dirty
//! corpus never pollutes a real `mdls-analyze check` run (the
//! self-check test in `self_check.rs` proves that).

use mdls_analyze::analyze_str;

/// `(line, lint-id)` pairs declared by `// FINDING: id[, id]` markers.
fn expected(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("FINDING:") {
            for id in line[pos + "FINDING:".len()..].split(',') {
                out.push((idx as u32 + 1, id.trim().to_string()));
            }
        }
    }
    out.sort();
    out
}

/// Analyze `src` as a non-test file of `krate` and compare against the
/// fixture's own markers.
fn check(name: &str, krate: &str, src: &str) {
    let rel = format!("crates/{krate}/src/{name}");
    let mut got: Vec<(u32, String)> = analyze_str(&rel, krate, src)
        .into_iter()
        .map(|f| (f.line, f.lint.to_string()))
        .collect();
    got.sort();
    assert_eq!(
        got,
        expected(src),
        "findings for fixture `{name}` (as crate `{krate}`) diverge from its markers"
    );
}

/// Analyze `src` as `krate` and require a completely clean report.
fn check_clean(name: &str, krate: &str, src: &str) {
    let got = analyze_str(&format!("crates/{krate}/src/{name}"), krate, src);
    assert!(
        got.is_empty(),
        "fixture `{name}` (as crate `{krate}`) should be clean, got:\n{}",
        got.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

const MAP_TRIP: &str = include_str!("fixtures/map_iteration_trip.rs");
const MAP_CLEAN: &str = include_str!("fixtures/map_iteration_clean.rs");
const CLOCK_TRIP: &str = include_str!("fixtures/wall_clock_trip.rs");
const CLOCK_CLEAN: &str = include_str!("fixtures/wall_clock_clean.rs");
const LOCK_TRIP: &str = include_str!("fixtures/lock_across_emit_trip.rs");
const LOCK_CLEAN: &str = include_str!("fixtures/lock_across_emit_clean.rs");
const UNSAFE_TRIP: &str = include_str!("fixtures/unsafe_trip.rs");
const UNSAFE_CLEAN: &str = include_str!("fixtures/unsafe_clean.rs");
const FLOAT_TRIP: &str = include_str!("fixtures/float_eq_trip.rs");
const FLOAT_CLEAN: &str = include_str!("fixtures/float_eq_clean.rs");
const SUPPRESS_GOOD: &str = include_str!("fixtures/suppression_good.rs");
const SUPPRESS_BAD: &str = include_str!("fixtures/suppression_bad.rs");
const TIMELINE_TRIP: &str = include_str!("fixtures/timeline_trip.rs");
const TIMELINE_CLEAN: &str = include_str!("fixtures/timeline_clean.rs");
const NONDET_TRIP: &str = include_str!("fixtures/nondeterministic_fault_trip.rs");
const NONDET_CLEAN: &str = include_str!("fixtures/nondeterministic_fault_clean.rs");
const SERVICE_TRIP: &str = include_str!("fixtures/service_queue_trip.rs");
const SERVICE_CLEAN: &str = include_str!("fixtures/service_queue_clean.rs");

#[test]
fn map_iteration_trips_and_cleans() {
    check("map_iteration_trip.rs", "pipeline", MAP_TRIP);
    assert_eq!(expected(MAP_TRIP).len(), 4, "marker count drifted");
    check_clean("map_iteration_clean.rs", "pipeline", MAP_CLEAN);
}

#[test]
fn map_iteration_scope_is_policy() {
    // the same tripping source is out of scope in a numerics crate
    check_clean("map_iteration_trip.rs", "qr", MAP_TRIP);
}

#[test]
fn wall_clock_trips_and_cleans() {
    check("wall_clock_trip.rs", "pipeline", CLOCK_TRIP);
    assert_eq!(expected(CLOCK_TRIP).len(), 3, "marker count drifted");
    check_clean("wall_clock_clean.rs", "pipeline", CLOCK_CLEAN);
}

#[test]
fn wall_clock_allowed_in_bench() {
    // the bench crate times the harness itself — host clocks are its job
    check_clean("wall_clock_trip.rs", "bench", CLOCK_TRIP);
}

#[test]
fn lock_across_emit_trips_and_cleans() {
    check("lock_across_emit_trip.rs", "pipeline", LOCK_TRIP);
    assert_eq!(expected(LOCK_TRIP).len(), 2, "marker count drifted");
    check_clean("lock_across_emit_clean.rs", "pipeline", LOCK_CLEAN);
}

#[test]
fn lock_across_emit_applies_everywhere() {
    // Scope::All — even the root crate's sources are covered
    check("lock_across_emit_trip.rs", "multidouble-ls", LOCK_TRIP);
}

#[test]
fn undocumented_unsafe_trips_and_cleans() {
    check("unsafe_trip.rs", "gpusim", UNSAFE_TRIP);
    assert_eq!(expected(UNSAFE_TRIP).len(), 3, "marker count drifted");
    check_clean("unsafe_clean.rs", "gpusim", UNSAFE_CLEAN);
}

#[test]
fn float_eq_trips_and_cleans() {
    check("float_eq_trip.rs", "pipeline", FLOAT_TRIP);
    assert_eq!(expected(FLOAT_TRIP).len(), 4, "marker count drifted");
    check_clean("float_eq_clean.rs", "pipeline", FLOAT_CLEAN);
}

#[test]
fn float_eq_allowed_in_transform_crates() {
    // error-free transforms (two-sum, two-product) *depend* on exact
    // float equality — the lint stays out of multidouble and matrix
    check_clean("float_eq_trip.rs", "multidouble", FLOAT_TRIP);
    check_clean("float_eq_trip.rs", "matrix", FLOAT_TRIP);
}

#[test]
fn float_eq_skips_test_files_by_path() {
    // skip_tests also applies to whole files under tests/
    let got = analyze_str("crates/pipeline/tests/model.rs", "pipeline", FLOAT_TRIP);
    assert!(got.is_empty(), "tests/ path should be exempt: {got:?}");
}

#[test]
fn timeline_mutation_trips_and_cleans() {
    check("timeline_trip.rs", "pipeline", TIMELINE_TRIP);
    assert_eq!(expected(TIMELINE_TRIP).len(), 5, "marker count drifted");
    check_clean("timeline_clean.rs", "pipeline", TIMELINE_CLEAN);
}

#[test]
fn timeline_mutation_exempts_pool_and_other_crates() {
    // pool.rs *is* the Timeline API — the exact path is exempt
    let got = analyze_str("crates/pipeline/src/pool.rs", "pipeline", TIMELINE_TRIP);
    assert!(got.is_empty(), "pool.rs should be exempt: {got:?}");
    // and the lint is pipeline-only policy
    check_clean("timeline_trip.rs", "gpusim", TIMELINE_TRIP);
}

#[test]
fn nondeterministic_fault_trips_and_cleans() {
    // analyzed as `bench` — where the wall-clock lint is off — to prove
    // the fault lint fires on path, not crate
    check("nondeterministic_fault_trip.rs", "bench", NONDET_TRIP);
    assert_eq!(expected(NONDET_TRIP).len(), 6, "marker count drifted");
    check_clean("nondeterministic_fault_clean.rs", "bench", NONDET_CLEAN);
}

#[test]
fn nondeterministic_fault_is_path_scoped() {
    // the same entropy reads under a file name that does not denote
    // fault/chaos/recovery code are this lint's non-problem (the
    // wall-clock lint owns the general case)
    let got = analyze_str("crates/bench/src/throughput.rs", "bench", NONDET_TRIP);
    assert!(
        got.iter()
            .all(|f| f.lint != "nondeterministic-fault-source"),
        "non-fault path should be out of scope: {got:?}"
    );
}

#[test]
fn nondeterministic_fault_exempts_fault_rs() {
    // fault.rs *is* the seeded FaultPlan source — the exact path is
    // exempt (other lints, e.g. wall-clock in gpusim, still apply)
    let got = analyze_str("crates/gpusim/src/fault.rs", "gpusim", NONDET_TRIP);
    assert!(
        got.iter()
            .all(|f| f.lint != "nondeterministic-fault-source"),
        "fault.rs should be exempt from the fault-source lint: {got:?}"
    );
}

#[test]
fn unbounded_service_queue_trips_and_cleans() {
    check("service_queue_trip.rs", "pipeline", SERVICE_TRIP);
    assert_eq!(expected(SERVICE_TRIP).len(), 4, "marker count drifted");
    check_clean("service_queue_clean.rs", "pipeline", SERVICE_CLEAN);
}

#[test]
fn unbounded_service_queue_is_path_scoped() {
    // the same pushes under a file name that does not denote service
    // code are out of scope — bounded ingress is the shell's contract,
    // not every VecDeque's
    let got = analyze_str("crates/pipeline/src/stream.rs", "pipeline", SERVICE_TRIP);
    assert!(
        got.is_empty(),
        "non-service path should be out of scope: {got:?}"
    );
    // and the lint is pipeline-only policy: the bench crate's own
    // service.rs (the harness) is exempt
    check_clean("service_queue_trip.rs", "bench", SERVICE_TRIP);
}

#[test]
fn unbounded_service_queue_skips_test_files_by_path() {
    // skip_tests: a service test may build scenario queues freely
    let got = analyze_str("crates/pipeline/tests/service.rs", "pipeline", SERVICE_TRIP);
    assert!(got.is_empty(), "tests/ path should be exempt: {got:?}");
}

#[test]
fn reasoned_allows_suppress() {
    check_clean("suppression_good.rs", "pipeline", SUPPRESS_GOOD);
}

#[test]
fn suppression_meta_lints() {
    let got: Vec<(u32, String)> = analyze_str(
        "crates/pipeline/src/suppression_bad.rs",
        "pipeline",
        SUPPRESS_BAD,
    )
    .into_iter()
    .map(|f| (f.line, f.lint.to_string()))
    .collect();
    // a reason-less allow suppresses nothing (the finding survives)
    // *and* is flagged itself; unknown ids and stale allows are
    // findings too — the exception list can only shrink
    assert_eq!(
        got,
        vec![
            (7, "bare-allow".to_string()),
            (7, "float-eq-outside-core".to_string()),
            (11, "unknown-lint".to_string()),
            (15, "unused-allow".to_string()),
        ]
    );
}
