// Tripping fixture for `lock-across-emit` (any crate — Scope::All):
// the two shapes the planner actually shipped with. Never compiled —
// lexed only.

impl Planner {
    pub fn hit(&self, key: u64) -> Option<Plan> {
        // the `if let` condition's temporary guard lives through the
        // whole branch, arms and all
        if let Some(p) = self.cache.lock().unwrap().get(&key) {
            self.emit(|| Event::PlanCacheHit { key }); // FINDING: lock-across-emit
            return Some(p.clone());
        }
        None
    }

    pub fn stats(&self) -> u64 {
        // a named guard binding is live to the end of the block
        let guard = self.counts.lock().unwrap();
        let n = guard.len() as u64;
        self.emit(|| Event::CacheSize { n }); // FINDING: lock-across-emit
        n
    }
}
