// Clean fixture for `float-eq-outside-core` (analyzed as crate
// `pipeline`): tolerance compares, integer compares, and test-module
// exemption. Never compiled — lexed only.

pub fn close(lhs: f64, rhs: f64) -> bool {
    // tolerance comparison is the sanctioned form
    (lhs - rhs).abs() < 1.0e-12
}

pub fn same_count(n: usize, m: usize) -> bool {
    // integer equality is fine
    n == m
}

pub fn same_name(a: &str, b: &str) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    // the lint skips test code: asserting exact values of a
    // deterministic model is the whole point of the test suites
    #[test]
    fn exact_model_value() {
        let wall_ms: f64 = super::close(1.0, 1.0) as u8 as f64;
        assert!(wall_ms == 1.0);
    }
}
