// Clean fixture for `lock-across-emit`: both tripping shapes from the
// paired fixture, fixed the way the planner fixes them. Never
// compiled — lexed only.

impl Planner {
    pub fn hit(&self, key: u64) -> Option<Plan> {
        // clone out of the guard in its own statement — the temporary
        // dies at the `;`, before the emit
        let cached = self.cache.lock().unwrap().get(&key).cloned();
        if let Some(p) = cached {
            self.emit(|| Event::PlanCacheHit { key });
            return Some(p);
        }
        None
    }

    pub fn stats(&self) -> u64 {
        // an explicit drop releases a named guard before the emit
        let guard = self.counts.lock().unwrap();
        let n = guard.len() as u64;
        drop(guard);
        self.emit(|| Event::CacheSize { n });
        n
    }
}
