// Clean fixture for the suppression grammar: both placement forms,
// each with a written reason, each actually suppressing a finding.
// Never compiled — lexed only.

pub fn is_sentinel(residual: f64) -> bool {
    residual == -1.0 // analyze::allow(float-eq-outside-core): -1.0 is an exact sentinel, never computed
}

pub fn demo_timing() -> std::time::Instant {
    // analyze::allow(wall-clock-in-sim): host-side harness timing, not simulated time
    std::time::Instant::now()
}
