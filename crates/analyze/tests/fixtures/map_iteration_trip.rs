// Tripping fixture for `map-iteration-order` (analyzed as crate
// `pipeline`). Never compiled — lexed by the analyzer only.
use std::collections::{HashMap, HashSet};

pub fn bucket_totals(wall_by_job: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_job, ms) in wall_by_job.iter() { // FINDING: map-iteration-order
        total += *ms;
    }
    total
}

pub fn drain_all(mut pending: HashMap<u64, u32>) -> u32 {
    let mut n = 0;
    for (_k, v) in pending.drain() { // FINDING: map-iteration-order
        n += v;
    }
    n
}

pub fn keys_in_hash_order(index: &HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for k in index { // FINDING: map-iteration-order
        out.push(*k);
    }
    out
}

pub struct Cache {
    seen: HashMap<u64, u64>,
}

impl Cache {
    pub fn purge(&mut self) {
        self.seen.retain(|_, v| *v > 0); // FINDING: map-iteration-order
    }
}
