// Clean fixture for `map-iteration-order` (analyzed as crate
// `pipeline`): lookups, sorted containers, first-appearance bucketing
// and Vec iteration are all fine. Never compiled — lexed only.
use std::collections::{BTreeMap, HashMap};

pub fn lookup(cache: &HashMap<u64, f64>, key: u64) -> Option<f64> {
    // point lookups don't depend on iteration order
    cache.get(&key).copied()
}

pub fn sorted_walk(totals: &BTreeMap<u64, f64>) -> f64 {
    // BTreeMap iterates in key order — deterministic by construction
    totals.values().sum()
}

pub fn first_appearance(jobs: &[u64], cache: &HashMap<u64, usize>) -> Vec<u64> {
    // the repo's idiom: bucket by first appearance in a Vec, use the
    // map only for membership
    let mut order = Vec::new();
    for j in jobs {
        if !cache.contains_key(j) {
            order.push(*j);
        }
    }
    order
}

pub fn vec_iteration(stage_wall_ms: &[f64]) -> f64 {
    // `.iter()` on a non-map receiver is fine
    stage_wall_ms.iter().sum()
}

pub fn indexed(cache: &HashMap<u64, f64>, keys: &[u64]) -> usize {
    // `for i in 0..cache.len()` has a method chain in the loop expr,
    // not a bare map ident — not an iteration of the map
    let mut hits = 0;
    for i in 0..keys.len() {
        if cache.contains_key(&keys[i]) {
            hits += 1;
        }
    }
    hits
}
