// Clean fixture for `unbounded-service-queue`: every queue push sits
// behind a capacity check — the direct comparison form, a named
// predicate, an else branch of an at-capacity test, and a guard one
// block above the push. Never compiled — lexed only.
use std::collections::VecDeque;

pub struct Ingress {
    queue: VecDeque<u64>,
    pending: Vec<u64>,
    cap: usize,
}

fn push_bounded(q: &mut VecDeque<u64>, cap: usize, v: u64) -> bool {
    if q.len() < cap {
        q.push_back(v);
        true
    } else {
        false
    }
}

impl Ingress {
    fn is_full(&self) -> bool {
        self.queue.len() >= self.cap
    }

    pub fn enqueue(&mut self, job: u64) -> bool {
        push_bounded(&mut self.queue, self.cap, job)
    }

    pub fn defer(&mut self, job: u64) {
        if self.pending.len() < self.pending.capacity() {
            self.pending.push(job);
        }
    }

    pub fn admit(&mut self, job: u64) {
        if !self.is_full() {
            self.queue.push_back(job);
        }
    }

    pub fn admit_or_drop(&mut self, job: u64) {
        if self.queue.len() >= self.cap {
            drop(job);
        } else {
            // the else arm of an at-capacity test is exactly the
            // under-capacity branch
            self.queue.push_back(job);
        }
    }

    pub fn absorb(&mut self, wave: Vec<u64>) {
        // the guard sits one block above the push — outward walk
        if self.queue.len() + wave.len() <= self.cap {
            for job in wave {
                self.queue.push_back(job);
            }
        }
    }

    pub fn refill(&mut self, src: &mut Vec<u64>) {
        while self.queue.len() < self.cap {
            let Some(v) = src.pop() else { break };
            self.queue.push_back(v);
        }
    }
}
