// Tripping fixture for the suppression meta-lints: a reason-less
// allow does not suppress (and is itself a finding), an allow naming
// an unknown lint is a finding, and an allow that matches nothing is
// a finding. Never compiled — lexed only.

pub fn bare(residual: f64) -> bool {
    residual == 0.0 // analyze::allow(float-eq-outside-core)
}

pub fn unknown() -> u32 {
    1 // analyze::allow(no-such-lint): misremembered id
}

pub fn stale() -> u32 {
    // analyze::allow(wall-clock-in-sim): nothing below reads a clock
    2
}
