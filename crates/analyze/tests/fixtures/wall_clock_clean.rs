// Clean fixture for `wall-clock-in-sim` (analyzed as crate
// `pipeline`): simulated clocks and mere imports are fine. Never
// compiled — lexed only.
use std::time::Instant; // importing the type is not reading the clock

pub struct Device {
    clock_ms: f64,
}

impl Device {
    pub fn advance(&mut self, wall_ms: f64) -> f64 {
        // simulated time is the analytic model's currency — advancing
        // a stored clock never touches the host
        self.clock_ms += wall_ms;
        self.clock_ms
    }
}

pub fn holds_an_instant(t: Instant) -> Instant {
    // passing one through (e.g. plumbing for the bench crate) is fine;
    // only `Instant::now()` reads the clock
    t
}
