// Clean fixture for `nondeterministic-fault-source`: fault-path code
// that replays entirely from recorded seeds. Never compiled — lexed
// only.
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRANSIENT_SEED: u64 = 0xc4a05;

pub fn seeded_fault_schedule(horizon_ms: f64) -> Vec<f64> {
    // seeded constructors are the sanctioned source
    let mut rng = StdRng::seed_from_u64(TRANSIENT_SEED);
    let plan = FaultPlan::seeded(TRANSIENT_SEED, horizon_ms, 4.0).with_device_lost(40.0);
    let jitter: f64 = multidouble::random::rand_real(&mut rng);
    let mut out = plan.transients().to_vec();
    out.push(jitter);
    out
}
