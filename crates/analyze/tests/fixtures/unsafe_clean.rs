// Clean fixture for `undocumented-unsafe`: every documented adjacency
// form the lint accepts. Never compiled — lexed only.

pub fn read_plane(buf: &Buffer, i: usize) -> f64 {
    // Safety: caller guarantees `i < len`; the plane pointer is valid
    // for the buffer's lifetime (second line of the run still counts).
    unsafe { *buf.ptr.add(i) }
}

// Safety: the cells are only touched by one simulated block at a time.
unsafe impl Send for Buffer {}

pub fn trailing_form(buf: &Buffer) -> f64 {
    unsafe { *buf.ptr } // Safety: non-null by construction
}

// `unsafe fn` declarations are rustc's job via
// `deny(unsafe_op_in_unsafe_fn)`; the lint only polices blocks/impls
pub unsafe fn raw_entry(ptr: *const f64) -> *const f64 {
    ptr
}
