// Tripping fixture for `timeline-mutation-outside-pool` (analyzed as
// `crates/pipeline/src/timeline_trip.rs` — any pipeline file that is
// not pool.rs itself; the same source under the pool.rs path is clean
// — exemption test). Never compiled — lexed only.

pub struct Lane {
    pub intervals: Vec<(f64, f64)>,
}

pub fn squeeze(lane: &mut Lane, span: (f64, f64)) {
    lane.intervals.push(span); // FINDING: timeline-mutation-outside-pool
    lane.intervals.sort_by(|a, b| a.0.total_cmp(&b.0)); // FINDING: timeline-mutation-outside-pool
}

pub fn drop_first(lane: &mut Lane) {
    lane.intervals.remove(0); // FINDING: timeline-mutation-outside-pool
}

pub fn stretch_tail(lane: &mut Lane, end_ms: f64) {
    let last = lane.intervals.len() - 1;
    lane.intervals[last].1 = end_ms; // FINDING: timeline-mutation-outside-pool
}

pub fn leak_mut(lane: &mut Lane) -> &mut Vec<(f64, f64)> {
    &mut lane.intervals // FINDING: timeline-mutation-outside-pool
}

pub fn read_only(lane: &Lane) -> usize {
    // reads are fine: length, iteration, the accessor call shape
    let n = lane.intervals.len();
    let spans: f64 = lane.intervals.iter().map(|iv| iv.1 - iv.0).sum();
    n + spans as usize
}
