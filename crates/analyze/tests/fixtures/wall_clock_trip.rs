// Tripping fixture for `wall-clock-in-sim` (analyzed as crate
// `pipeline`; the same source analyzed as `bench` is clean — scope
// test). Never compiled — lexed only.
use std::time::{Duration, Instant, SystemTime};

pub fn race_the_host_clock() -> f64 {
    let t0 = Instant::now(); // FINDING: wall-clock-in-sim
    let _wall = SystemTime::now(); // FINDING: wall-clock-in-sim
    std::thread::sleep(Duration::from_millis(1)); // FINDING: wall-clock-in-sim
    t0.elapsed().as_secs_f64()
}
