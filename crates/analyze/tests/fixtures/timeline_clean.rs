// Clean fixture for `timeline-mutation-outside-pool`: everything a
// pipeline file outside pool.rs may legitimately do with a lane —
// read the accessor slice, fold over it, probe fits. Never compiled —
// lexed only.

pub struct Lane {
    intervals: Vec<(f64, f64)>,
}

impl Lane {
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    pub fn cursor_ms(&self) -> f64 {
        self.intervals.last().map(|iv| iv.1).unwrap_or(0.0)
    }
}

pub fn booked_ms(lane: &Lane) -> f64 {
    lane.intervals().iter().map(|iv| iv.1 - iv.0).sum()
}

pub fn first_gap(lane: &Lane, dur_ms: f64) -> f64 {
    let mut t = 0.0f64;
    for iv in lane.intervals() {
        if t + dur_ms <= iv.0 {
            return t;
        }
        t = t.max(iv.1);
    }
    t
}

pub fn span_count(lane: &Lane) -> usize {
    lane.intervals().len()
}
