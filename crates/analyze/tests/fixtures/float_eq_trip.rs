// Tripping fixture for `float-eq-outside-core` (analyzed as crate
// `pipeline`; the same source analyzed as `multidouble` is clean —
// scope test). Never compiled — lexed only.

pub struct Stage {
    pub wall_ms: f64,
}

impl Stage {
    pub fn kernel_ms(&self) -> f64 {
        self.wall_ms * 0.5
    }
}

pub fn same_wall(a: &Stage, b: &Stage) -> bool {
    a.wall_ms == b.wall_ms // FINDING: float-eq-outside-core
}

pub fn same_kernel(a: &Stage, b: &Stage) -> bool {
    a.kernel_ms() != b.kernel_ms() // FINDING: float-eq-outside-core
}

pub fn is_zero(x: f64) -> bool {
    x == 0.0 // FINDING: float-eq-outside-core
}

pub fn saturated(residual: f64) -> bool {
    residual == f64::INFINITY // FINDING: float-eq-outside-core
}
