// Tripping fixture for `undocumented-unsafe` (any crate — Scope::All).
// Never compiled — lexed only.

pub fn read_plane(buf: &Buffer, i: usize) -> f64 {
    unsafe { *buf.ptr.add(i) } // FINDING: undocumented-unsafe
}

unsafe impl Send for Buffer {} // FINDING: undocumented-unsafe

pub fn wrong_prefix(buf: &Buffer) -> f64 {
    // SAFETY contract is upheld by the caller — wrong spelling: the
    // convention is `// Safety:` with the colon
    unsafe { *buf.ptr } // FINDING: undocumented-unsafe
}
