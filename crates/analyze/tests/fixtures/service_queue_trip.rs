// Tripping fixture for `unbounded-service-queue` (analyzed as crate
// `pipeline` under a file name containing `service`; the same source
// under a non-service file name — or a non-pipeline crate — is clean:
// scope tests). Never compiled — lexed only.
use std::collections::VecDeque;

pub struct Ingress {
    queue: VecDeque<u64>,
    backlog: Vec<u64>,
    done: Vec<u64>,
}

impl Ingress {
    pub fn enqueue(&mut self, job: u64) {
        self.queue.push_back(job); // FINDING: unbounded-service-queue
    }

    pub fn defer(&mut self, job: u64) {
        self.backlog.push(job); // FINDING: unbounded-service-queue
    }

    pub fn accept_wave(&mut self, wave: Vec<u64>) {
        for job in wave {
            // guarded, but by priority — not by capacity
            if job > 0 {
                self.queue.push_back(job); // FINDING: unbounded-service-queue
            }
        }
    }

    pub fn stash(pending: &mut Vec<u64>, job: u64) {
        pending.push(job); // FINDING: unbounded-service-queue
    }

    pub fn record(&mut self, job: u64) {
        // not a queue by name: plain `.push(..)` on a results list is
        // out of scope (only `.push_back` is flagged on any receiver)
        self.done.push(job);
    }
}
