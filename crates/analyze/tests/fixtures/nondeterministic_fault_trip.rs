// Tripping fixture for `nondeterministic-fault-source` (analyzed as
// crate `bench`, where the wall-clock lint is off — this lint still
// fires because the *path* names fault code; the same source under a
// non-fault file name is clean — scope test). Never compiled — lexed
// only.
use rand::rngs::OsRng; // FINDING: nondeterministic-fault-source
use std::time::{Instant, SystemTime};

pub fn roll_an_unrepeatable_fault_schedule() -> f64 {
    let mut rng = rand::thread_rng(); // FINDING: nondeterministic-fault-source
    let gap: f64 = rand::random(); // FINDING: nondeterministic-fault-source
    let seeded_badly = StdRng::from_entropy(); // FINDING: nondeterministic-fault-source
    let t0 = Instant::now(); // FINDING: nondeterministic-fault-source
    let _wall = SystemTime::now(); // FINDING: nondeterministic-fault-source
    gap + t0.elapsed().as_secs_f64()
}
