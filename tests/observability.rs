//! Observer-inertness tests: attaching an observer must change
//! *nothing* — solution bits, device placement, and every simulated
//! timestamp are identical with and without one, on all three
//! execution paths (plain batch, staged batch, stream). The observed
//! runs also pin down what the event stream must contain, so the trace
//! exporter and metrics aggregation are exercised against real
//! pipeline output, not synthetic fixtures.

use std::sync::Arc;

use multidouble_ls::obs::{metrics::Metrics, trace, Event, Recorder};
use multidouble_ls::pipeline::{
    bursty_tracker_jobs, power_flow_jobs, solve_batch_staged, solve_batch_with,
    solve_stream_staged, BatchReport, DevicePool, DispatchPolicy, Job, JobOutcome,
    MicrobatchConfig, StageSchedConfig,
};
use multidouble_ls::sim::Gpu;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pool2() -> DevicePool {
    DevicePool::new(vec![Gpu::v100(), Gpu::p100()])
}

fn jobs(count: usize, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    power_flow_jobs(count, &mut rng)
}

fn assert_identical_outcomes(plain: &[JobOutcome], observed: &[JobOutcome]) {
    assert_eq!(plain.len(), observed.len());
    for (p, o) in plain.iter().zip(observed) {
        assert_eq!(p.job_id, o.job_id);
        assert_eq!(p.x, o.x, "job {}: observation changed the bits", p.job_id);
        assert_eq!(p.residual, o.residual);
        assert_eq!(p.device, o.device, "job {}: placement moved", p.job_id);
        assert_eq!(p.start_ms, o.start_ms, "job {}: start moved", p.job_id);
        assert_eq!(p.end_ms, o.end_ms, "job {}: end moved", p.job_id);
        assert_eq!(p.refunded_ms, o.refunded_ms);
        assert_eq!(p.extended_ms, o.extended_ms);
    }
}

fn assert_identical_reports(plain: &BatchReport, observed: &BatchReport) {
    assert_identical_outcomes(&plain.outcomes, &observed.outcomes);
    assert_eq!(plain.makespan_ms, observed.makespan_ms);
    assert_eq!(plain.latency, observed.latency);
    assert_eq!(
        plain.latency.deadline_misses,
        observed.latency.deadline_misses
    );
}

#[test]
fn observer_is_inert_on_the_batch_path() {
    let jobs = jobs(40, 0x0b5e);
    let mut pool_plain = pool2();
    let plain = solve_batch_with(&mut pool_plain, &jobs, 1, DispatchPolicy::LeastLoaded);

    let recorder = Arc::new(Recorder::new());
    let mut pool_obs = pool2();
    pool_obs.attach_observer(recorder.clone());
    let observed = solve_batch_with(&mut pool_obs, &jobs, 1, DispatchPolicy::LeastLoaded);

    assert_identical_reports(&plain, &observed);
    // and the observed run actually produced an event stream
    let events = recorder.events();
    assert!(!events.is_empty());
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, Event::JobSettled { .. }))
            .count(),
        jobs.len(),
        "one settlement per job"
    );
    // every device was announced, so the trace names every lane
    let doc = trace::chrome_trace(&events);
    trace::validate_trace(&doc, 2).expect("batch trace must validate");
}

#[test]
fn observer_is_inert_on_the_staged_path() {
    let jobs = jobs(36, 0x57a6ed);
    let micro = MicrobatchConfig::default();
    let sched = StageSchedConfig::staged();
    let mut pool_plain = pool2();
    let plain = solve_batch_staged(
        &mut pool_plain,
        &jobs,
        DispatchPolicy::ShortestExpectedCompletion,
        &micro,
        &sched,
    );

    let recorder = Arc::new(Recorder::new());
    let mut pool_obs = pool2();
    pool_obs.attach_observer(recorder.clone());
    let observed = solve_batch_staged(
        &mut pool_obs,
        &jobs,
        DispatchPolicy::ShortestExpectedCompletion,
        &micro,
        &sched,
    );

    assert_identical_reports(&plain, &observed);
    let events = recorder.events();
    // stage-granular bookings and calibration records flow on this path
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::StageBooked { .. })));
    assert!(events.iter().any(|e| matches!(e, Event::StageTime { .. })));
    let m = Metrics::from_events(&events);
    assert_eq!(m.jobs, jobs.len() as u64);
    assert!(
        !m.calibration().is_empty(),
        "no predicted-vs-settled stage-time records"
    );
}

#[test]
fn observer_is_inert_on_the_stream_path() {
    let mk_jobs = || {
        let mut rng = StdRng::seed_from_u64(0xf10e);
        bursty_tracker_jobs(30, 6, 25.0, &mut rng)
    };
    let run = |pool: &mut DevicePool| -> Vec<JobOutcome> {
        solve_stream_staged(
            pool,
            mk_jobs(),
            DispatchPolicy::ShortestExpectedCompletion,
            6,
            MicrobatchConfig::default(),
            StageSchedConfig::staged(),
        )
        .collect()
    };
    let mut pool_plain = pool2();
    let plain = run(&mut pool_plain);

    let recorder = Arc::new(Recorder::new());
    let mut pool_obs = pool2();
    pool_obs.attach_observer(recorder.clone());
    let observed = run(&mut pool_obs);

    assert_identical_outcomes(&plain, &observed);
    assert_eq!(pool_plain.makespan_ms(), pool_obs.makespan_ms());
    let events = recorder.events();
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, Event::JobSettled { .. }))
            .count(),
        plain.len()
    );
    // the stream's group former reports through the same event stream
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::GroupFormed { .. })));
    let doc = trace::chrome_trace(&events);
    trace::validate_trace(&doc, 2).expect("stream trace must validate");
}
