//! Cross-crate integration tests: the simulated device pipeline against
//! host golden references, across precisions and scalar kinds.

use multidouble_ls::backsub::{backsub, BacksubOptions};
use multidouble_ls::matrix::{vec_norm2, HostMat};
use multidouble_ls::md::{Cdd, Complex, Dd, MdReal, MdScalar, Od, Qd};
use multidouble_ls::qr::{householder_qr_host, qr_decompose, QrOptions};
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Device QR and host QR must agree on R up to the working precision
/// (Q may differ by reflector aggregation order, R is canonical up to
/// column phases; compare |R| entrywise).
#[test]
fn device_qr_matches_host_reference() {
    let mut rng = StdRng::seed_from_u64(501);
    let opts = QrOptions {
        tiles: 3,
        tile_size: 8,
    };
    let a = HostMat::<Qd>::random(24, 24, &mut rng);
    let dev = qr_decompose(&Gpu::v100(), ExecMode::Sequential, &a, &opts);
    let (_, r_host) = householder_qr_host(&a);
    let r_dev = dev.r.unwrap();
    let mut max_diff = 0.0f64;
    for c in 0..24 {
        for row in 0..=c {
            let d = (r_dev.get(row, c).abs_val() - r_host.get(row, c).abs_val())
                .abs()
                .to_f64();
            max_diff = max_diff.max(d);
        }
    }
    assert!(max_diff < 1e-55, "|R| mismatch {max_diff:e}");
}

/// Device back substitution equals the host triangular solve.
#[test]
fn device_backsub_matches_host_solve() {
    let mut rng = StdRng::seed_from_u64(502);
    let opts = BacksubOptions {
        tiles: 5,
        tile_size: 8,
    };
    let dim = opts.dim();
    let u = multidouble_ls::matrix::well_conditioned_upper::<Dd, _>(dim, &mut rng);
    let b: Vec<Dd> = multidouble_ls::matrix::random_vector(dim, &mut rng);
    let want = u.solve_upper(&b);
    let run = backsub(&Gpu::p100(), ExecMode::Sequential, &u, &b, &opts);
    let got = run.x.unwrap();
    let err = multidouble_ls::matrix::norms::vec_diff_norm2(&got, &want).to_f64()
        / vec_norm2(&want).to_f64();
    assert!(err < 1e-28, "device vs host solve {err:e}");
}

/// The full solver at every precision: residuals land at the unit
/// roundoff of the working precision on well-conditioned inputs (§4.1).
#[test]
fn solver_residuals_track_unit_roundoff() {
    fn residual<S: MdScalar>(seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = LstsqOptions {
            tiles: 2,
            tile_size: 8,
            mode: ExecMode::Sequential,
        };
        let n = opts.cols();
        let a = HostMat::<S>::random(n, n, &mut rng);
        let xt: Vec<S> = multidouble_ls::matrix::random_vector(n, &mut rng);
        let b = a.matvec(&xt);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        a.residual(&run.x, &b).to_f64() / vec_norm2(&b).to_f64()
    }
    let r1 = residual::<f64>(601);
    let r2 = residual::<Dd>(602);
    let r4 = residual::<Qd>(603);
    let r8 = residual::<Od>(604);
    assert!(r1 < 1e-12 && r2 < 1e-28 && r4 < 1e-59 && r8 < 1e-120);
    // each doubling of the precision buys ~16 decades
    assert!(r2 < r1 * 1e-10 && r4 < r2 * 1e-10 && r8 < r4 * 1e-10);
}

/// Complex arithmetic end to end (the Table 5 configuration, shrunk).
#[test]
fn complex_solver_and_hermitian_qr() {
    let mut rng = StdRng::seed_from_u64(505);
    let opts = QrOptions {
        tiles: 2,
        tile_size: 8,
    };
    let a = HostMat::<Cdd>::random(16, 16, &mut rng);
    let run = qr_decompose(&Gpu::v100(), ExecMode::Sequential, &a, &opts);
    let q = run.q.unwrap();
    assert!(q.orthogonality_defect().to_f64() < 1e-27);

    let lopts = LstsqOptions {
        tiles: 2,
        tile_size: 8,
        mode: ExecMode::Sequential,
    };
    let xt: Vec<Cdd> = multidouble_ls::matrix::random_vector(16, &mut rng);
    let b = a.matvec(&xt);
    let sol = lstsq(&Gpu::v100(), &a, &b, &lopts);
    let res = a.residual(&sol.x, &b).to_f64() / vec_norm2(&b).to_f64();
    assert!(res < 1e-27, "complex residual {res:e}");
}

/// Octo double complex — the deepest scalar in the grid.
#[test]
fn octo_double_complex_qr() {
    let mut rng = StdRng::seed_from_u64(506);
    let opts = QrOptions {
        tiles: 2,
        tile_size: 4,
    };
    let a = HostMat::<Complex<Od>>::random(8, 8, &mut rng);
    let run = qr_decompose(&Gpu::v100(), ExecMode::Sequential, &a, &opts);
    let q = run.q.unwrap();
    let o = q.orthogonality_defect().to_f64();
    assert!(o < 1e-117, "complex od orthogonality {o:e}");
}

/// The launch accounting follows the paper's formulas on every device.
#[test]
fn launch_accounting_invariants() {
    let opts = BacksubOptions {
        tiles: 7,
        tile_size: 4,
    };
    for gpu in Gpu::all() {
        let p = multidouble_ls::backsub::backsub_model_profile::<Qd>(&gpu, &opts);
        assert_eq!(
            p.total_launches(),
            1 + 7 * 8 / 2,
            "Algorithm 1 launch count on {}",
            gpu.name
        );
        // analytic profiles are device independent in their op counts
        let flops = p.total_flops_paper();
        let p2 = multidouble_ls::backsub::backsub_model_profile::<Qd>(&Gpu::v100(), &opts);
        assert_eq!(flops, p2.total_flops_paper());
    }
}

/// Functional and model-only runs produce identical cost accounting
/// (the analytic model cannot depend on data).
#[test]
fn functional_and_model_profiles_agree() {
    let mut rng = StdRng::seed_from_u64(507);
    let opts = QrOptions {
        tiles: 2,
        tile_size: 8,
    };
    let a = HostMat::<Dd>::random(16, 16, &mut rng);
    let f = qr_decompose(&Gpu::rtx2080(), ExecMode::Parallel, &a, &opts);
    let m = qr_decompose(&Gpu::rtx2080(), ExecMode::ModelOnly, &a, &opts);
    assert_eq!(f.profile.all_kernels_ms(), m.profile.all_kernels_ms());
    assert_eq!(f.profile.total_flops_paper(), m.profile.total_flops_paper());
    assert_eq!(f.profile.total_bytes(), m.profile.total_bytes());
}
