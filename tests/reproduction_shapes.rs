//! The reproduction regression suite: every qualitative claim of the
//! paper that DESIGN.md commits to is asserted here against the model, so
//! calibration changes cannot silently break the reproduction.

use multidouble_ls::backsub::{backsub_model_profile, BacksubOptions};
use multidouble_ls::md::cost::predicted_overhead_factor as predicted_overhead;
use multidouble_ls::md::{Dd, Od, Qd};
use multidouble_ls::qr::{qr_model_profile, QrOptions, STAGE_COMPUTE_W, STAGE_QWYT, STAGE_YWTC};
use multidouble_ls::sim::roofline::RooflinePoint;
use multidouble_ls::sim::Gpu;
use multidouble_ls::solver::{lstsq_model_profiles, LstsqOptions};

fn qr1024<S: multidouble_ls::md::MdScalar>(gpu: &Gpu) -> multidouble_ls::sim::Profile {
    qr_model_profile::<S>(
        gpu,
        1024,
        &QrOptions {
            tiles: 8,
            tile_size: 128,
        },
    )
}

/// Claim 1 (abstract, §4.3): teraflop performance is attained already by
/// the double double QR on 1,024 × 1,024 matrices on the P100 and V100.
#[test]
fn teraflop_at_1024_dd_on_p100_and_v100() {
    for gpu in [Gpu::p100(), Gpu::v100()] {
        let p = qr1024::<Dd>(&gpu);
        assert!(
            p.kernel_gflops() >= 1000.0,
            "{}: {:.0} GF",
            gpu.name,
            p.kernel_gflops()
        );
    }
    // and NOT on the older/consumer devices
    for gpu in [Gpu::c2050(), Gpu::k20c(), Gpu::rtx2080()] {
        let p = qr1024::<Dd>(&gpu);
        assert!(
            p.kernel_gflops() < 1000.0,
            "{} unexpectedly above a teraflop",
            gpu.name
        );
    }
}

/// Claim 2 (§4.4, Table 4): the observed cost overhead factors of
/// doubling the precision are *below* the Table 1 predictions
/// (11.7 for 2d→4d, 5.4 for 4d→8d) on all three sweep devices.
#[test]
fn observed_overheads_below_predicted() {
    let pred24 = predicted_overhead(2, 4);
    let pred48 = predicted_overhead(4, 8);
    assert!((pred24 - 11.7).abs() < 0.1);
    assert!((pred48 - 5.4).abs() < 0.1);
    for gpu in Gpu::sweep_trio() {
        let k2 = qr1024::<Dd>(&gpu).all_kernels_ms();
        let k4 = qr1024::<Qd>(&gpu).all_kernels_ms();
        let k8 = qr1024::<Od>(&gpu).all_kernels_ms();
        let f24 = k4 / k2;
        let f48 = k8 / k4;
        assert!(f24 < pred24, "{}: 2d->4d factor {f24:.2}", gpu.name);
        assert!(f48 < pred48, "{}: 4d->8d factor {f48:.2}", gpu.name);
        // and the factors are still substantial (no free precision)
        assert!(f24 > 4.0 && f48 > 2.0, "{}: implausibly cheap", gpu.name);
    }
}

/// Claim 3 (Table 4): kernel-time gigaflops *increase* with the working
/// precision on every sweep device — the CGMA effect.
#[test]
fn performance_increases_with_precision() {
    for gpu in Gpu::sweep_trio() {
        let g2 = qr1024::<Dd>(&gpu).kernel_gflops();
        let g4 = qr1024::<Qd>(&gpu).kernel_gflops();
        let g8 = qr1024::<Od>(&gpu).kernel_gflops();
        assert!(
            g2 < g4 && g4 < g8,
            "{}: {g2:.0} / {g4:.0} / {g8:.0} GF not increasing",
            gpu.name
        );
    }
}

/// Claim 4 (§4.8, Table 9): the quad double back substitution reaches a
/// teraflop on the V100 only near n = 224 (dimension 17,920).
#[test]
fn backsub_teraflop_threshold_at_17920() {
    let v100 = Gpu::v100();
    let gf = |n: usize| {
        backsub_model_profile::<Qd>(
            &v100,
            &BacksubOptions {
                tiles: 80,
                tile_size: n,
            },
        )
        .kernel_gflops()
    };
    assert!(gf(128) < 1000.0, "n=128 already at a teraflop");
    assert!(gf(224) >= 1000.0, "n=224 below a teraflop: {:.0}", gf(224));
}

/// Claim 5 (Table 11): the back substitution kernel time is roughly two
/// orders of magnitude below the QR time at dimension 1,024, so the
/// solver keeps the QR's teraflop throughput.
#[test]
fn solver_dominated_by_qr() {
    let opts = LstsqOptions {
        tiles: 8,
        tile_size: 128,
        mode: multidouble_ls::sim::ExecMode::ModelOnly,
    };
    for gpu in Gpu::sweep_trio() {
        let (qr, bs) = lstsq_model_profiles::<Qd>(&gpu, &opts);
        let ratio = qr.all_kernels_ms() / bs.all_kernels_ms();
        assert!(
            (20.0..2000.0).contains(&ratio),
            "{}: QR/BS ratio {ratio:.0}",
            gpu.name
        );
    }
    let (qr, bs) = lstsq_model_profiles::<Qd>(&Gpu::v100(), &opts);
    let mut total = qr.clone();
    total.absorb(&bs);
    assert!(
        total.kernel_gflops() >= 1000.0,
        "solver below a teraflop: {:.0}",
        total.kernel_gflops()
    );
}

/// Claim 6 (§4.5, §4.6, Tables 5–6): `compute W` dominates the QR at
/// dimension 512; by dimension 2048 the two matrix-matrix products are
/// the two most expensive stages.
#[test]
fn stage_dominance_crossover() {
    let v100 = Gpu::v100();
    let small = qr_model_profile::<Qd>(
        &v100,
        512,
        &QrOptions {
            tiles: 4,
            tile_size: 128,
        },
    );
    let w = small.stage(STAGE_COMPUTE_W).unwrap().kernel_ms;
    for s in small.stages() {
        assert!(
            s.kernel_ms <= w + 1e-9,
            "at 512, {} ({:.1} ms) beats compute W ({:.1} ms)",
            s.name,
            s.kernel_ms,
            w
        );
    }
    let big = qr_model_profile::<Qd>(
        &v100,
        2048,
        &QrOptions {
            tiles: 16,
            tile_size: 128,
        },
    );
    let mut by_time: Vec<_> = big.stages().iter().collect();
    by_time.sort_by(|a, b| b.kernel_ms.total_cmp(&a.kernel_ms));
    let top2: Vec<&str> = by_time[..2].iter().map(|s| s.name.as_str()).collect();
    assert!(
        top2.contains(&STAGE_QWYT) && top2.contains(&STAGE_YWTC),
        "top stages at 2048: {top2:?}"
    );
}

/// Claim 7 (§4.8, Figure 5): the roofline dots move up and to the right
/// as the tile size grows.
#[test]
fn roofline_moves_up_right() {
    let v100 = Gpu::v100();
    let pts: Vec<RooflinePoint> = (1..=8)
        .map(|k| {
            let n = 32 * k;
            RooflinePoint::from_profile(
                n,
                &backsub_model_profile::<Qd>(
                    &v100,
                    &BacksubOptions {
                        tiles: 80,
                        tile_size: n,
                    },
                ),
            )
        })
        .collect();
    for w in pts.windows(2) {
        assert!(
            w[1].intensity > w[0].intensity,
            "intensity not increasing at n = {}",
            w[1].label
        );
        assert!(
            w[1].gflops > w[0].gflops,
            "gflops not increasing at n = {}",
            w[1].label
        );
    }
}

/// Claim 8 (Table 7): the octo double 20,480 back substitution blows past
/// the host's RAM, wrecking the wall clock but not the kernel times.
#[test]
fn octo_double_ram_outlier() {
    let v100 = Gpu::v100();
    let qd = backsub_model_profile::<Qd>(
        &v100,
        &BacksubOptions {
            tiles: 160,
            tile_size: 128,
        },
    );
    let od = backsub_model_profile::<Od>(
        &v100,
        &BacksubOptions {
            tiles: 160,
            tile_size: 128,
        },
    );
    // kernels scale by the arithmetic; the wall clock explodes with swap
    let kernel_ratio = od.all_kernels_ms() / qd.all_kernels_ms();
    let wall_ratio = od.wall_ms() / qd.wall_ms();
    assert!(kernel_ratio < 6.0, "kernel ratio {kernel_ratio:.1}");
    assert!(
        wall_ratio > 10.0,
        "wall ratio {wall_ratio:.1} (no swap blowup)"
    );
}

/// Claim 9 (§4.3): the V100/P100 total-kernel ratio of the QR is in the
/// neighbourhood of the 1.68 peak-performance ratio.
#[test]
fn v100_over_p100_near_peak_ratio() {
    let p = qr1024::<Dd>(&Gpu::p100()).all_kernels_ms();
    let v = qr1024::<Dd>(&Gpu::v100()).all_kernels_ms();
    let ratio = p / v;
    assert!(
        (1.2..2.4).contains(&ratio),
        "P100/V100 kernel ratio {ratio:.2} far from 1.68"
    );
}
