//! Property-based tests over the whole stack: arithmetic identities on
//! random multi-limb values, and solver invariants on random shapes.
//!
//! Written as seeded random-case loops (the offline build has no
//! `proptest`); every case prints enough context in its assertion
//! message to reproduce from the seed.

use multidouble_ls::matrix::{vec_norm2, HostMat};
use multidouble_ls::md::{Dd, MdReal, MdScalar, Od, Qd};
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a full-entropy multiple double from four raw doubles.
fn md_from_parts<T: MdReal>(parts: [f64; 4]) -> T {
    let mut acc = T::zero();
    let mut scale = 1.0f64;
    for (i, p) in parts.iter().enumerate() {
        if i >= T::LIMBS {
            break;
        }
        acc += T::from_f64(*p).mul_pwr2(scale);
        scale *= 2f64.powi(-53);
    }
    acc
}

/// Four uniform doubles in `(-1e3, 1e3)` — the proptest strategy's range.
fn finite_parts(rng: &mut StdRng) -> [f64; 4] {
    [
        rng.random_range(-1.0e3..1.0e3),
        rng.random_range(-1.0e3..1.0e3),
        rng.random_range(-1.0e3..1.0e3),
        rng.random_range(-1.0e3..1.0e3),
    ]
}

const ARITH_CASES: usize = 64;

macro_rules! arithmetic_props {
    ($mod_name:ident, $T:ty, $ulps:expr, $seed:expr) => {
        mod $mod_name {
            use super::*;

            fn close(a: $T, b: $T) -> bool {
                let scale = MdScalar::abs_val(b).to_f64().max(1.0);
                (a - b).abs().to_f64() <= $ulps * <$T as MdReal>::EPS * scale
            }

            #[test]
            fn add_commutes() {
                let mut rng = StdRng::seed_from_u64($seed);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    assert_eq!(x + y, y + x, "case {case}");
                }
            }

            #[test]
            fn sub_inverts_add() {
                let mut rng = StdRng::seed_from_u64($seed + 1);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    assert!(close((x + y) - y, x), "case {case}: x {x}, y {y}");
                }
            }

            #[test]
            fn mul_div_roundtrip() {
                let mut rng = StdRng::seed_from_u64($seed + 2);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    if MdScalar::abs_val(y).to_f64() <= 1e-3 {
                        continue;
                    }
                    assert!(close((x * y) / y, x), "case {case}: x {x}, y {y}");
                }
            }

            #[test]
            fn distributive() {
                let mut rng = StdRng::seed_from_u64($seed + 3);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    let z = md_from_parts::<$T>(finite_parts(&mut rng));
                    // the roundoff of `x*y + x*z` scales with the summand
                    // magnitudes, which cancellation can dwarf the result by
                    let scale = (MdScalar::abs_val(x * y).to_f64()
                        + MdScalar::abs_val(x * z).to_f64())
                    .max(1.0);
                    let diff = (x * (y + z) - (x * y + x * z)).abs().to_f64();
                    assert!(
                        diff <= $ulps * <$T as MdReal>::EPS * scale,
                        "case {case}: x {x}, y {y}, z {z}"
                    );
                }
            }

            #[test]
            fn sqrt_squares_back() {
                let mut rng = StdRng::seed_from_u64($seed + 4);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng)).abs();
                    if x.to_f64() <= 1e-6 {
                        continue;
                    }
                    let r = x.sqrt();
                    assert!(close(r * r, x), "case {case}: x {x}");
                }
            }

            #[test]
            fn normalized_limbs() {
                let mut rng = StdRng::seed_from_u64($seed + 5);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng))
                        * md_from_parts::<$T>(finite_parts(&mut rng));
                    // ulp-nonoverlapping: adding a lower limb to the one
                    // above must not change it
                    for i in 0..<$T as MdReal>::LIMBS - 1 {
                        let (hi, lo) = (x.limb(i), x.limb(i + 1));
                        if lo != 0.0 {
                            assert_eq!(hi + lo, hi, "case {case}: limb {i} overlaps in {x}");
                        }
                    }
                }
            }
        }
    };
}

arithmetic_props!(dd_props, Dd, 8.0, 0xdd00);
arithmetic_props!(qd_props, Qd, 64.0, 0x4d00);
arithmetic_props!(od_props, Od, 512.0, 0x0d00);

/// The solver's residual lands at the working precision for random
/// tilings (tile geometry must never affect correctness).
#[test]
fn solver_correct_for_any_tiling() {
    let mut rng = StdRng::seed_from_u64(0x50_1e);
    for case in 0..8 {
        let tiles = 1 + (rng.random_range(0.0..4.0) as usize); // 1..=4
        let tile = 1 << (2 + (rng.random_range(0.0..2.0) as usize)); // 4 or 8
        let seed = rng.random_range(0.0..1000.0) as u64;
        let opts = LstsqOptions {
            tiles,
            tile_size: tile,
            mode: ExecMode::Sequential,
        };
        let n = opts.cols();
        let mut data_rng = StdRng::seed_from_u64(seed);
        let a = HostMat::<Dd>::random(n, n, &mut data_rng);
        let xt: Vec<Dd> = multidouble_ls::matrix::random_vector(n, &mut data_rng);
        let b = a.matvec(&xt);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        let res = a.residual(&run.x, &b).to_f64() / vec_norm2(&b).to_f64();
        assert!(
            res < 1e-26,
            "case {case}: tiles {tiles} x {tile}, seed {seed}: residual {res:e}"
        );
    }
}

/// Kernel time and flop accounting are strictly monotone in the
/// problem size (sanity of the analytic model).
#[test]
fn model_monotone_in_dimension() {
    let f = |tiles: usize| {
        multidouble_ls::backsub::backsub_model_profile::<Qd>(
            &Gpu::v100(),
            &multidouble_ls::backsub::BacksubOptions {
                tiles,
                tile_size: 32,
            },
        )
    };
    for k in 1..6 {
        let a = f(k);
        let b = f(k + 1);
        assert!(b.all_kernels_ms() > a.all_kernels_ms(), "tiles {k}");
        assert!(b.total_flops_paper() > a.total_flops_paper(), "tiles {k}");
    }
}
