//! Property-based tests over the whole stack: arithmetic identities on
//! random multi-limb values, and solver invariants on random shapes.

use multidouble_ls::matrix::{vec_norm2, HostMat};
use multidouble_ls::md::{Dd, MdReal, MdScalar, Od, Qd};
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a full-entropy multiple double from four raw doubles.
fn md_from_parts<T: MdReal>(parts: [f64; 4]) -> T {
    let mut acc = T::zero();
    let mut scale = 1.0f64;
    for (i, p) in parts.iter().enumerate() {
        if i >= T::LIMBS {
            break;
        }
        acc = acc + T::from_f64(*p).mul_pwr2(scale);
        scale *= 2f64.powi(-53);
    }
    acc
}

fn finite_parts() -> impl Strategy<Value = [f64; 4]> {
    prop::array::uniform4(-1.0e3..1.0e3f64)
}

macro_rules! arithmetic_props {
    ($mod_name:ident, $T:ty, $ulps:expr) => {
        mod $mod_name {
            use super::*;

            fn close(a: $T, b: $T) -> bool {
                let scale = MdScalar::abs_val(b).to_f64().max(1.0);
                (a - b).abs().to_f64() <= $ulps * <$T as MdReal>::EPS * scale
            }

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]

                #[test]
                fn add_commutes(a in finite_parts(), b in finite_parts()) {
                    let (x, y) = (md_from_parts::<$T>(a), md_from_parts::<$T>(b));
                    prop_assert_eq!(x + y, y + x);
                }

                #[test]
                fn sub_inverts_add(a in finite_parts(), b in finite_parts()) {
                    let (x, y) = (md_from_parts::<$T>(a), md_from_parts::<$T>(b));
                    prop_assert!(close((x + y) - y, x));
                }

                #[test]
                fn mul_div_roundtrip(a in finite_parts(), b in finite_parts()) {
                    let x = md_from_parts::<$T>(a);
                    let y = md_from_parts::<$T>(b);
                    prop_assume!(MdScalar::abs_val(y).to_f64() > 1e-3);
                    prop_assert!(close((x * y) / y, x));
                }

                #[test]
                fn distributive(a in finite_parts(), b in finite_parts(), c in finite_parts()) {
                    let x = md_from_parts::<$T>(a);
                    let y = md_from_parts::<$T>(b);
                    let z = md_from_parts::<$T>(c);
                    prop_assert!(close(x * (y + z), x * y + x * z));
                }

                #[test]
                fn sqrt_squares_back(a in finite_parts()) {
                    let x = md_from_parts::<$T>(a).abs();
                    prop_assume!(x.to_f64() > 1e-6);
                    let r = x.sqrt();
                    prop_assert!(close(r * r, x));
                }

                #[test]
                fn normalized_limbs(a in finite_parts(), b in finite_parts()) {
                    let x = md_from_parts::<$T>(a) * md_from_parts::<$T>(b);
                    // ulp-nonoverlapping: adding a lower limb to the one
                    // above must not change it
                    for i in 0..<$T as MdReal>::LIMBS - 1 {
                        let (hi, lo) = (x.limb(i), x.limb(i + 1));
                        if lo != 0.0 {
                            prop_assert_eq!(hi + lo, hi, "limb {} overlaps", i);
                        }
                    }
                }
            }
        }
    };
}

arithmetic_props!(dd_props, Dd, 8.0);
arithmetic_props!(qd_props, Qd, 64.0);
arithmetic_props!(od_props, Od, 512.0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The solver's residual lands at the working precision for random
    /// tilings (tile geometry must never affect correctness).
    #[test]
    fn solver_correct_for_any_tiling(tiles in 1usize..5, tile_pow in 2usize..4, seed in 0u64..1000) {
        let tile = 1 << tile_pow; // 4 or 8
        let opts = LstsqOptions { tiles, tile_size: tile, mode: ExecMode::Sequential };
        let n = opts.cols();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = HostMat::<Dd>::random(n, n, &mut rng);
        let xt: Vec<Dd> = multidouble_ls::matrix::random_vector(n, &mut rng);
        let b = a.matvec(&xt);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        let res = a.residual(&run.x, &b).to_f64() / vec_norm2(&b).to_f64();
        prop_assert!(res < 1e-26, "tiles {} x {}: residual {:e}", tiles, tile, res);
    }

    /// Kernel time and flop accounting are strictly monotone in the
    /// problem size (sanity of the analytic model).
    #[test]
    fn model_monotone_in_dimension(k in 1usize..6) {
        let f = |tiles: usize| multidouble_ls::backsub::backsub_model_profile::<Qd>(
            &Gpu::v100(),
            &multidouble_ls::backsub::BacksubOptions { tiles, tile_size: 32 },
        );
        let a = f(k);
        let b = f(k + 1);
        prop_assert!(b.all_kernels_ms() > a.all_kernels_ms());
        prop_assert!(b.total_flops_paper() > a.total_flops_paper());
    }
}
