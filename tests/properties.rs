//! Property-based tests over the whole stack: arithmetic identities on
//! random multi-limb values, and solver invariants on random shapes.
//!
//! Written as seeded random-case loops (the offline build has no
//! `proptest`); every case prints enough context in its assertion
//! message to reproduce from the seed.

use multidouble_ls::matrix::{vec_norm2, HostMat};
use multidouble_ls::md::{Dd, MdReal, MdScalar, Od, Qd};
use multidouble_ls::sim::{ExecMode, Gpu};
use multidouble_ls::solver::{lstsq, LstsqOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a full-entropy multiple double from four raw doubles.
fn md_from_parts<T: MdReal>(parts: [f64; 4]) -> T {
    let mut acc = T::zero();
    let mut scale = 1.0f64;
    for (i, p) in parts.iter().enumerate() {
        if i >= T::LIMBS {
            break;
        }
        acc += T::from_f64(*p).mul_pwr2(scale);
        scale *= 2f64.powi(-53);
    }
    acc
}

/// Four uniform doubles in `(-1e3, 1e3)` — the proptest strategy's range.
fn finite_parts(rng: &mut StdRng) -> [f64; 4] {
    [
        rng.random_range(-1.0e3..1.0e3),
        rng.random_range(-1.0e3..1.0e3),
        rng.random_range(-1.0e3..1.0e3),
        rng.random_range(-1.0e3..1.0e3),
    ]
}

const ARITH_CASES: usize = 64;

macro_rules! arithmetic_props {
    ($mod_name:ident, $T:ty, $ulps:expr, $seed:expr) => {
        mod $mod_name {
            use super::*;

            fn close(a: $T, b: $T) -> bool {
                let scale = MdScalar::abs_val(b).to_f64().max(1.0);
                (a - b).abs().to_f64() <= $ulps * <$T as MdReal>::EPS * scale
            }

            #[test]
            fn add_commutes() {
                let mut rng = StdRng::seed_from_u64($seed);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    assert_eq!(x + y, y + x, "case {case}");
                }
            }

            #[test]
            fn sub_inverts_add() {
                let mut rng = StdRng::seed_from_u64($seed + 1);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    assert!(close((x + y) - y, x), "case {case}: x {x}, y {y}");
                }
            }

            #[test]
            fn mul_div_roundtrip() {
                let mut rng = StdRng::seed_from_u64($seed + 2);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    if MdScalar::abs_val(y).to_f64() <= 1e-3 {
                        continue;
                    }
                    assert!(close((x * y) / y, x), "case {case}: x {x}, y {y}");
                }
            }

            #[test]
            fn distributive() {
                let mut rng = StdRng::seed_from_u64($seed + 3);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng));
                    let y = md_from_parts::<$T>(finite_parts(&mut rng));
                    let z = md_from_parts::<$T>(finite_parts(&mut rng));
                    // the roundoff of `x*y + x*z` scales with the summand
                    // magnitudes, which cancellation can dwarf the result by
                    let scale = (MdScalar::abs_val(x * y).to_f64()
                        + MdScalar::abs_val(x * z).to_f64())
                    .max(1.0);
                    let diff = (x * (y + z) - (x * y + x * z)).abs().to_f64();
                    assert!(
                        diff <= $ulps * <$T as MdReal>::EPS * scale,
                        "case {case}: x {x}, y {y}, z {z}"
                    );
                }
            }

            #[test]
            fn sqrt_squares_back() {
                let mut rng = StdRng::seed_from_u64($seed + 4);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng)).abs();
                    if x.to_f64() <= 1e-6 {
                        continue;
                    }
                    let r = x.sqrt();
                    assert!(close(r * r, x), "case {case}: x {x}");
                }
            }

            #[test]
            fn normalized_limbs() {
                let mut rng = StdRng::seed_from_u64($seed + 5);
                for case in 0..ARITH_CASES {
                    let x = md_from_parts::<$T>(finite_parts(&mut rng))
                        * md_from_parts::<$T>(finite_parts(&mut rng));
                    // ulp-nonoverlapping: adding a lower limb to the one
                    // above must not change it
                    for i in 0..<$T as MdReal>::LIMBS - 1 {
                        let (hi, lo) = (x.limb(i), x.limb(i + 1));
                        if lo != 0.0 {
                            assert_eq!(hi + lo, hi, "case {case}: limb {i} overlaps in {x}");
                        }
                    }
                }
            }
        }
    };
}

arithmetic_props!(dd_props, Dd, 8.0, 0xdd00);
arithmetic_props!(qd_props, Qd, 64.0, 0x4d00);
arithmetic_props!(od_props, Od, 512.0, 0x0d00);

/// The solver's residual lands at the working precision for random
/// tilings (tile geometry must never affect correctness).
#[test]
fn solver_correct_for_any_tiling() {
    let mut rng = StdRng::seed_from_u64(0x50_1e);
    for case in 0..8 {
        let tiles = 1 + (rng.random_range(0.0..4.0) as usize); // 1..=4
        let tile = 1 << (2 + (rng.random_range(0.0..2.0) as usize)); // 4 or 8
        let seed = rng.random_range(0.0..1000.0) as u64;
        let opts = LstsqOptions {
            tiles,
            tile_size: tile,
            mode: ExecMode::Sequential,
        };
        let n = opts.cols();
        let mut data_rng = StdRng::seed_from_u64(seed);
        let a = HostMat::<Dd>::random(n, n, &mut data_rng);
        let xt: Vec<Dd> = multidouble_ls::matrix::random_vector(n, &mut data_rng);
        let b = a.matvec(&xt);
        let run = lstsq(&Gpu::v100(), &a, &b, &opts);
        let res = a.residual(&run.x, &b).to_f64() / vec_norm2(&b).to_f64();
        assert!(
            res < 1e-26,
            "case {case}: tiles {tiles} x {tile}, seed {seed}: residual {res:e}"
        );
    }
}

/// Kernel time and flop accounting are strictly monotone in the
/// problem size (sanity of the analytic model).
#[test]
fn model_monotone_in_dimension() {
    let f = |tiles: usize| {
        multidouble_ls::backsub::backsub_model_profile::<Qd>(
            &Gpu::v100(),
            &multidouble_ls::backsub::BacksubOptions {
                tiles,
                tile_size: 32,
            },
        )
    };
    for k in 1..6 {
        let a = f(k);
        let b = f(k + 1);
        assert!(b.all_kernels_ms() > a.all_kernels_ms(), "tiles {k}");
        assert!(b.total_flops_paper() > a.total_flops_paper(), "tiles {k}");
    }
}

// ---------------------------------------------------------------------------
// Interval-timeline and staged-engine properties (stage-level scheduling)
// ---------------------------------------------------------------------------

mod timeline_props {
    use super::*;
    use multidouble_ls::pipeline::{
        power_flow_jobs, solve_batch_staged_with, DevicePool, DispatchPolicy, MicrobatchConfig,
        RebookMode, StageBooking, StageReq, StageSchedConfig, Timeline,
    };

    /// Every lane invariant the pool promises: intervals are non-empty,
    /// sorted by start, pairwise disjoint, and the cursor sits exactly
    /// at the last interval's end.
    fn assert_lane_invariants(label: &str, tl: &Timeline) {
        let ivs = tl.intervals();
        for (i, iv) in ivs.iter().enumerate() {
            assert!(iv.1 > iv.0, "{label}: interval {i} {iv:?} has no width");
            if i > 0 {
                assert!(
                    ivs[i - 1].1 <= iv.0,
                    "{label}: intervals {:?} and {iv:?} out of order or overlapping",
                    ivs[i - 1]
                );
            }
        }
        let tail = ivs.last().map(|iv| iv.1).unwrap_or(0.0);
        assert_eq!(
            tl.cursor_ms().to_bits(),
            tail.to_bits(),
            "{label}: cursor {} is not the last interval end {}",
            tl.cursor_ms(),
            tail
        );
    }

    fn random_reqs(rng: &mut StdRng) -> Vec<StageReq> {
        let n_stages = 1 + rng.random_range(0.0..4.0) as usize;
        (0..n_stages)
            .map(|s| StageReq {
                host_ms: if s == 0 {
                    rng.random_range(0.0..3.0)
                } else {
                    0.0
                },
                device_ms: 0.5 + rng.random_range(0.0..6.0),
            })
            .collect()
    }

    /// Random booking / re-booking sequences never break a lane: the
    /// interval lists stay sorted and disjoint and the cursor tracks the
    /// tail, on both device lanes and every staging worker, after every
    /// single operation.
    #[test]
    fn timelines_stay_sorted_disjoint_with_cursor_at_tail() {
        let mut rng = StdRng::seed_from_u64(0x11_f0);
        for round in 0..6usize {
            let workers = 1 + round % 3;
            let mut pool = DevicePool::homogeneous(&Gpu::v100(), 2);
            pool.set_staging_workers(workers);
            let mut live: Vec<StageBooking> = Vec::new();
            for op in 0..32 {
                let dev = rng.random_range(0.0..2.0) as usize;
                let reqs = random_reqs(&mut rng);
                let overlap = rng.random_range(0.0..1.0) < 0.7;
                let nb_ms = rng.random_range(0.0..25.0);
                let kernel_ms: f64 = reqs.iter().map(|r| r.device_ms).sum();
                live.push(pool.commit_stages(dev, &reqs, kernel_ms, 0.0, 1, overlap, nb_ms));
                if rng.random_range(0.0..1.0) < 0.4 {
                    let pick = rng.random_range(0.0..live.len() as f64) as usize;
                    let victim = live.swap_remove(pick);
                    let from = rng.random_range(0.0..(victim.stages.len() + 1) as f64) as usize;
                    let mode = if rng.random_range(0.0..1.0) < 0.5 {
                        RebookMode::Compact
                    } else {
                        RebookMode::TailOnly
                    };
                    pool.rebook(&victim, from, mode);
                }
                for d in pool.devices() {
                    let id = d.id;
                    assert_lane_invariants(
                        &format!("round {round} op {op}: device {id} prep lane"),
                        d.host_timeline(),
                    );
                    assert_lane_invariants(
                        &format!("round {round} op {op}: device {id} compute lane"),
                        d.device_timeline(),
                    );
                }
                for w in 0..workers {
                    assert_lane_invariants(
                        &format!("round {round} op {op}: staging worker {w}"),
                        pool.staging().worker(w),
                    );
                }
            }
        }
    }

    /// A booking that fits a mid-schedule hole lands inside it, and the
    /// bookings already on the timeline (the "executing" work) keep the
    /// exact spans they had — gap-filling never overlaps or moves them.
    #[test]
    fn gap_fill_never_overlaps_an_executing_booking() {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
        let stage = |device_ms: f64| StageReq {
            host_ms: 0.0,
            device_ms,
        };
        let head = pool.commit_stages(0, &[stage(10.0)], 10.0, 0.0, 1, false, 0.0);
        let tail = pool.commit_stages(0, &[stage(10.0)], 10.0, 0.0, 1, false, 20.0);
        // hole is [10, 20): a 5 ms booking must gap-fill at 10
        let filler = pool.commit_stages(0, &[stage(5.0)], 5.0, 0.0, 1, false, 0.0);
        assert_eq!(
            filler.stages[0].device.0.to_bits(),
            10f64.to_bits(),
            "filler did not gap-fill: starts at {}",
            filler.stages[0].device.0
        );
        for (name, old) in [("head", &head), ("tail", &tail)] {
            let now = pool.live_booking(old.id).expect("booking still live");
            for (so, sn) in old.stages.iter().zip(&now.stages) {
                assert_eq!(
                    so.device.0.to_bits(),
                    sn.device.0.to_bits(),
                    "{name} booking moved"
                );
                assert_eq!(
                    so.device.1.to_bits(),
                    sn.device.1.to_bits(),
                    "{name} booking resized"
                );
                // and the filler stays clear of it
                for f in &filler.stages {
                    assert!(
                        f.device.1 <= sn.device.0 || sn.device.1 <= f.device.0,
                        "filler {:?} overlaps {name} {:?}",
                        f.device,
                        sn.device
                    );
                }
            }
        }
    }

    /// Compacting re-books only ever move *unstarted* intervals, and
    /// never move any queued dispatch later: every interval that began
    /// before the refund point keeps its exact span, and every queued
    /// booking's completion is `<=` what it was before the compaction.
    #[test]
    fn compaction_never_moves_a_started_interval_or_delays_anyone() {
        let mut rng = StdRng::seed_from_u64(0xc0_4a);
        for case in 0..12 {
            let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
            pool.set_staging_workers(1);
            let refunder_reqs: Vec<StageReq> = (0..4)
                .map(|s| StageReq {
                    host_ms: if s == 0 { 2.0 } else { 0.0 },
                    device_ms: 4.0 + rng.random_range(0.0..4.0),
                })
                .collect();
            let kernel_ms: f64 = refunder_reqs.iter().map(|r| r.device_ms).sum();
            let refunder = pool.commit_stages(0, &refunder_reqs, kernel_ms, 0.0, 1, true, 0.0);
            let mut queued = Vec::new();
            for _ in 0..5 {
                let reqs = random_reqs(&mut rng);
                let wall_ms: f64 = reqs.iter().map(|r| r.device_ms).sum();
                let nb_ms = rng.random_range(0.0..8.0);
                queued.push(pool.commit_stages(0, &reqs, wall_ms, 0.0, 1, true, nb_ms));
            }
            // the refunder "executed" only stage 0; everything after is refunded
            let placed = pool.live_booking(refunder.id).expect("refunder live");
            let at_ms = placed.stages[0].end_ms();
            let before: Vec<StageBooking> = queued
                .iter()
                .map(|b| pool.live_booking(b.id).expect("queued booking live"))
                .collect();
            pool.rebook(&refunder, 1, RebookMode::Compact);
            for old in &before {
                let new = pool
                    .live_booking(old.id)
                    .expect("still live after compaction");
                assert!(
                    new.end_ms() <= old.end_ms(),
                    "case {case}: compaction delayed booking {}: {} -> {}",
                    old.id,
                    old.end_ms(),
                    new.end_ms()
                );
                for (i, (so, sn)) in old.stages.iter().zip(&new.stages).enumerate() {
                    if so.device.1 > so.device.0 && so.device.0 < at_ms {
                        assert_eq!(
                            so.device.0.to_bits(),
                            sn.device.0.to_bits(),
                            "case {case}: started device interval moved (booking {} stage {i})",
                            old.id
                        );
                        assert_eq!(so.device.1.to_bits(), sn.device.1.to_bits());
                    }
                    if so.host.1 > so.host.0 && so.host.0 < at_ms {
                        assert_eq!(
                            so.host.0.to_bits(),
                            sn.host.0.to_bits(),
                            "case {case}: started prep interval moved (booking {} stage {i})",
                            old.id
                        );
                        assert_eq!(so.host.1.to_bits(), sn.host.1.to_bits());
                    }
                }
            }
        }
    }

    /// The per-device-queue executor (scoped threads, one queue per
    /// device) is bit- and schedule-identical to the serial executor:
    /// same solution bits, same device placements, same simulated
    /// `start_ms`/`end_ms` on every outcome.
    #[test]
    fn staged_parallel_executor_matches_serial_bits_and_schedule() {
        let mut rng = StdRng::seed_from_u64(0x5e_91);
        let jobs = power_flow_jobs(24, &mut rng);
        let sched = StageSchedConfig::staged();
        let micro = MicrobatchConfig::default();
        let run = |host_parallel: bool| {
            let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
            pool.set_staging_workers(1);
            solve_batch_staged_with(
                &mut pool,
                &jobs,
                DispatchPolicy::ShortestExpectedCompletion,
                &micro,
                &sched,
                host_parallel,
            )
        };
        let serial = run(false);
        let parallel = run(true);
        assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
        for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(s.job_id, p.job_id, "settlement order diverged");
            assert_eq!(s.device, p.device, "job {}: placement diverged", s.job_id);
            assert_eq!(
                s.x, p.x,
                "job {}: parallel executor changed the bits",
                s.job_id
            );
            assert_eq!(
                s.start_ms.to_bits(),
                p.start_ms.to_bits(),
                "job {}: start {} vs {}",
                s.job_id,
                s.start_ms,
                p.start_ms
            );
            assert_eq!(
                s.end_ms.to_bits(),
                p.end_ms.to_bits(),
                "job {}: end {} vs {}",
                s.job_id,
                s.end_ms,
                p.end_ms
            );
        }
        assert_eq!(serial.makespan_ms.to_bits(), parallel.makespan_ms.to_bits());
    }
}
