//! Integration tests of the batched multi-GPU solve pipeline.

use multidouble_ls::matrix::HostMat;
use multidouble_ls::pipeline::{
    power_flow_jobs, schedule, solve_batch, solve_batch_fused_with, solve_batch_staged,
    solve_batch_with, solve_planned, solve_stream_fused, solve_stream_with, tracker_jobs,
    workload_mix, DevicePool, DispatchPolicy, Job, JobOutcome, JobShape, MicrobatchConfig, Planner,
    StageSchedConfig,
};
use multidouble_ls::sim::Gpu;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The headline property: `solve_batch` over ≥ 1000 mixed-shape jobs is
/// *bit-identical* to solving each job sequentially with the same plan —
/// batching, device pooling and host worker threads change simulated
/// timing and real wall clock, never numerics.
#[test]
fn batch_matches_sequential_lstsq_on_1000_jobs() {
    let mut rng = StdRng::seed_from_u64(0xba7c4);
    let jobs = power_flow_jobs(1000, &mut rng);

    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::v100(), Gpu::a100(), Gpu::p100()]);
    let report = solve_batch(&mut pool, &jobs);
    assert_eq!(report.outcomes.len(), 1000);

    let planner = Planner::new();
    for (job, out) in jobs.iter().zip(&report.outcomes) {
        // replan for the device the batch used: the plan must agree...
        let gpu = pool.gpu(out.device);
        let plan = planner.plan(gpu, job.rows(), job.cols(), job.target_digits);
        assert_eq!(plan, out.plan, "job {}: plans diverge", job.id);
        // ...and the sequential solve must reproduce the batch solution
        // exactly (same options => same arithmetic => same bits)
        let (x, residual) = solve_planned(gpu, job, &plan);
        assert_eq!(x, out.x, "job {}: batch and sequential bits differ", job.id);
        assert_eq!(residual, out.residual, "job {}", job.id);
        // accuracy targets hold on these well-conditioned consistent jobs
        let bound = 10f64.powi(-(job.target_digits as i32));
        assert!(
            out.residual < bound,
            "job {}: residual {:e} misses {} digits",
            job.id,
            out.residual,
            job.target_digits
        );
    }

    // mixed shapes really exercised the planner
    assert!(
        report.distinct_plans >= 4,
        "only {} distinct plans over 1000 mixed jobs",
        report.distinct_plans
    );
    // every device of the pool took a share of the load
    for s in &report.device_stats {
        assert!(s.solves > 0, "device {} ({}) idle", s.id, s.name);
    }
}

/// Scheduler invariant: the simulated makespan of a fixed job set
/// decreases monotonically as the pool grows.
#[test]
fn makespan_decreases_with_device_count() {
    let mut rng = StdRng::seed_from_u64(0x5c4ed);
    let shapes: Vec<JobShape> = power_flow_jobs(64, &mut rng)
        .iter()
        .map(JobShape::from)
        .collect();
    let planner = Planner::new();
    for policy in [
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::ShortestExpectedCompletion,
    ] {
        let mut prev = f64::INFINITY;
        for devices in 1..=6 {
            let mut pool = DevicePool::homogeneous(&Gpu::v100(), devices);
            schedule(&mut pool, &planner, &shapes, policy);
            let makespan = pool.makespan_ms();
            assert!(
                makespan < prev,
                "{devices} devices ({}): makespan {makespan:.3} ms not below {prev:.3} ms",
                policy.tag()
            );
            prev = makespan;
        }
    }
}

/// Throughput scales near-linearly from one to two devices (the greedy
/// scheduler keeps both busy on a deep queue).
#[test]
fn two_devices_give_1_8x_throughput() {
    let mut rng = StdRng::seed_from_u64(0x7410);
    let shapes: Vec<JobShape> = power_flow_jobs(256, &mut rng)
        .iter()
        .map(JobShape::from)
        .collect();
    let planner = Planner::new();
    let throughput = |devices: usize| {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), devices);
        schedule(&mut pool, &planner, &shapes, DispatchPolicy::LeastLoaded);
        pool.solves_per_sec()
    };
    let t1 = throughput(1);
    let t2 = throughput(2);
    assert!(
        t2 >= 1.8 * t1,
        "1→2 devices: {t1:.1} → {t2:.1} solves/s ({:.2}x)",
        t2 / t1
    );
}

/// Policy property (seeded, mixed shapes/digits): over randomized
/// power-flow queues on heterogeneous pools, batch SECT's makespan is
/// never materially worse than greedy's — and on a structured workload
/// mix at service-window depth it is strictly better, by a wide margin
/// on the V100+P100 pool.
#[test]
fn sect_makespan_never_loses_to_greedy_on_heterogeneous_pools() {
    let pools: Vec<Vec<Gpu>> = vec![
        vec![Gpu::v100(), Gpu::p100()],
        vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()],
        vec![Gpu::v100(), Gpu::p100(), Gpu::a100()],
    ];
    let makespan = |gpus: &[Gpu], shapes: &[JobShape], policy: DispatchPolicy| {
        let mut pool = DevicePool::new(gpus.to_vec());
        schedule(&mut pool, &Planner::new(), shapes, policy);
        pool.makespan_ms()
    };
    for seed in 1u64..=6 {
        let mut rng = StdRng::seed_from_u64(seed);
        let shapes: Vec<JobShape> = power_flow_jobs(150, &mut rng)
            .iter()
            .map(JobShape::from)
            .collect();
        for gpus in &pools {
            let greedy = makespan(gpus, &shapes, DispatchPolicy::LeastLoaded);
            let sect = makespan(gpus, &shapes, DispatchPolicy::ShortestExpectedCompletion);
            // both are list-scheduling heuristics, so allow fp-scale
            // slack on random queues; the structured win is asserted
            // strictly below
            assert!(
                sect <= 1.01 * greedy,
                "seed {seed}, {} devices: SECT {sect:.2} ms worse than greedy {greedy:.2} ms",
                gpus.len()
            );
        }
    }
    // the structured mix (shared with the bench A/B): shapes and rungs
    // vary sharply per job, queue at service-window depth — SECT must
    // win outright on mixed pools
    let mix = workload_mix(60);
    let mixed = vec![Gpu::v100(), Gpu::v100(), Gpu::p100(), Gpu::p100()];
    let greedy = makespan(&mixed, &mix, DispatchPolicy::LeastLoaded);
    let sect = makespan(&mixed, &mix, DispatchPolicy::ShortestExpectedCompletion);
    assert!(
        sect <= 0.95 * greedy,
        "structured mix: SECT {sect:.1} ms not ≥5% under greedy {greedy:.1} ms"
    );
}

/// Policy property: outcomes are bit-identical across dispatch
/// policies on a heterogeneous pool — policies move jobs between
/// devices and through time, never through different arithmetic.
#[test]
fn outcomes_are_bit_identical_across_policies() {
    let mut rng = StdRng::seed_from_u64(0x9015c7);
    let jobs = power_flow_jobs(120, &mut rng);
    let gpus = || vec![Gpu::v100(), Gpu::p100(), Gpu::a100()];
    let mut pool_g = DevicePool::new(gpus());
    let greedy = solve_batch_with(&mut pool_g, &jobs, 1, DispatchPolicy::LeastLoaded);
    let mut pool_s = DevicePool::new(gpus());
    let sect = solve_batch_with(
        &mut pool_s,
        &jobs,
        1,
        DispatchPolicy::ShortestExpectedCompletion,
    );
    let mut moved = 0;
    for (g, s) in greedy.outcomes.iter().zip(&sect.outcomes) {
        assert_eq!(g.job_id, s.job_id);
        assert_eq!(g.x, s.x, "job {}: policy changed the bits", g.job_id);
        assert_eq!(g.residual, s.residual, "job {}", g.job_id);
        if g.device != s.device {
            moved += 1;
        }
    }
    // the policies must actually disagree on placement somewhere, or
    // the bit-equality above proved nothing
    assert!(moved > 0, "policies placed all 120 jobs identically");
}

/// Stream property: a high-priority corrector solve submitted late
/// overtakes queued low-priority predictor solves, and the reordering
/// leaves every solution bit-identical to the FIFO run.
#[test]
fn late_corrector_overtakes_predictors_in_the_stream() {
    let mut rng = StdRng::seed_from_u64(0x77ac3);
    let jobs = tracker_jobs(30, &mut rng);
    // correctors are every third job (priority 1, deadline-tagged)
    let corrector_ids: Vec<u64> = jobs
        .iter()
        .filter(|j| j.priority > 0)
        .map(|j| j.id)
        .collect();
    assert_eq!(corrector_ids.len(), 10);

    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    let outcomes: Vec<JobOutcome> = solve_stream_with(
        &mut pool,
        jobs.clone(),
        DispatchPolicy::ShortestExpectedCompletion,
        16,
    )
    .collect();
    assert_eq!(outcomes.len(), jobs.len());
    // within the first reorder window every corrector beats every
    // predictor: the 10 correctors all drain in the first 10+16-1 slots
    // and, more sharply, the very first drained job is a corrector that
    // arrived *after* several predictors
    assert!(
        corrector_ids.contains(&outcomes[0].job_id),
        "first drained job {} is not a corrector",
        outcomes[0].job_id
    );
    let first_predictor_slot = outcomes
        .iter()
        .position(|o| !corrector_ids.contains(&o.job_id))
        .unwrap();
    let correctors_before: usize = outcomes[..first_predictor_slot].len();
    assert!(
        correctors_before >= 5,
        "only {correctors_before} correctors drained before the first predictor"
    );

    // reordering never changes numerics: compare against a FIFO run
    let mut pool_f = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    let fifo: Vec<JobOutcome> = multidouble_ls::pipeline::solve_stream(&mut pool_f, jobs).collect();
    for f in &fifo {
        let r = outcomes.iter().find(|o| o.job_id == f.job_id).unwrap();
        assert_eq!(f.x, r.x, "job {}: reordering changed the bits", f.job_id);
    }
}

/// Micro-batching property (seeded, all ladder rungs): a fused batch
/// over a mixed power-flow queue — whose shape keys repeat heavily, so
/// real fusion happens at every rung — is bit-identical, job for job,
/// to interpreting each job's plan alone; and the fused solutions are
/// placement-invariant: a different pool (different devices, different
/// grouping pressure) produces the same bits.
#[test]
fn fused_batches_are_bit_identical_and_placement_invariant() {
    let mut rng = StdRng::seed_from_u64(0xf0_5ed);
    let jobs = power_flow_jobs(120, &mut rng);
    let cfg = MicrobatchConfig::default();

    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::a100()]);
    let report = solve_batch_fused_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded, &cfg);
    assert_eq!(report.outcomes.len(), jobs.len());
    assert!(
        report.fused_groups >= 4,
        "only {} fused groups over 120 repeated-shape jobs",
        report.fused_groups
    );

    // every rung of the ladder is exercised inside some fused group
    let fused_rungs: std::collections::HashSet<_> = report
        .outcomes
        .iter()
        .filter(|o| o.fused_group > 1)
        .map(|o| o.x.precision())
        .collect();
    assert!(
        fused_rungs.len() >= 3,
        "fused groups covered only {fused_rungs:?}"
    );

    // bit-identity against the singleton interpreter, per job
    let planner = Planner::new();
    for (job, out) in jobs.iter().zip(&report.outcomes) {
        let gpu = pool.gpu(out.device);
        let plan = planner.plan(gpu, job.rows(), job.cols(), job.target_digits);
        let (x, residual) = solve_planned(gpu, job, &plan);
        assert_eq!(x, out.x, "job {}: fused bits differ", job.id);
        assert_eq!(residual, out.residual, "job {}", job.id);
        assert!(out.achieved_digits >= job.target_digits as f64);
    }

    // placement invariance: an all-P100 pool fuses and places
    // differently but must produce the same bits
    let mut other = DevicePool::homogeneous(&Gpu::p100(), 3);
    let again = solve_batch_fused_with(&mut other, &jobs, 1, DispatchPolicy::LeastLoaded, &cfg);
    for (a, b) in report.outcomes.iter().zip(&again.outcomes) {
        assert_eq!(a.job_id, b.job_id);
        assert_eq!(a.x, b.x, "job {}: pool changed the bits", a.job_id);
        assert_eq!(a.residual, b.residual);
    }
}

/// Micro-batching lifts throughput end to end on a small-shape queue:
/// the fused batch clears the same jobs on the same pool at least
/// twice as fast as the unfused batch (the issue's acceptance bar,
/// measured through the public batch API rather than the planner).
#[test]
fn fused_batch_doubles_small_shape_throughput() {
    // the issue's shape grid: repeated 32..128-unknown systems at the
    // d and dd rungs — the service mix where one solve underfills a
    // device and shape keys recur enough to form real groups
    let mut rng = StdRng::seed_from_u64(0xfa57);
    let jobs: Vec<multidouble_ls::pipeline::Job> = (0..96u64)
        .map(|id| {
            let n = [32, 64, 96, 128][id as usize % 4];
            let digits = [12, 25][id as usize % 2];
            let a = multidouble_ls::matrix::HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(&mut rng);
                u + if r == c { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n)
                .map(|_| multidouble::random::rand_real(&mut rng))
                .collect();
            multidouble_ls::pipeline::Job::new(id, a, b, digits)
        })
        .collect();
    let mut plain = DevicePool::homogeneous(&Gpu::v100(), 2);
    let unfused = solve_batch_fused_with(
        &mut plain,
        &jobs,
        1,
        DispatchPolicy::LeastLoaded,
        &MicrobatchConfig::off(),
    );
    let mut micro = DevicePool::homogeneous(&Gpu::v100(), 2);
    let fused = solve_batch_fused_with(
        &mut micro,
        &jobs,
        1,
        DispatchPolicy::LeastLoaded,
        &MicrobatchConfig::default(),
    );
    assert!(
        fused.solves_per_sec >= 2.0 * unfused.solves_per_sec,
        "fused {:.1}/s vs unfused {:.1}/s",
        fused.solves_per_sec,
        unfused.solves_per_sec
    );
}

/// Stream fusion under the tracker workload: outcomes match the
/// unfused priority stream bit for bit AND drain in exactly the same
/// order (fusion takes drain-order prefixes only, so correctors still
/// overtake predictors precisely where they did before).
#[test]
fn fused_stream_preserves_tracker_ordering_and_bits() {
    let mut rng = StdRng::seed_from_u64(0x7ac3d);
    let jobs = tracker_jobs(36, &mut rng);
    let mut pool_u = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    let unfused: Vec<JobOutcome> = solve_stream_with(
        &mut pool_u,
        jobs.clone(),
        DispatchPolicy::ShortestExpectedCompletion,
        12,
    )
    .collect();
    let mut pool_f = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    let fused: Vec<JobOutcome> = solve_stream_fused(
        &mut pool_f,
        jobs,
        DispatchPolicy::ShortestExpectedCompletion,
        12,
        MicrobatchConfig::default(),
    )
    .collect();
    assert_eq!(unfused.len(), fused.len());
    for (u, f) in unfused.iter().zip(&fused) {
        assert_eq!(u.job_id, f.job_id, "fusion changed the drain order");
        assert_eq!(u.x, f.x, "job {}: fusion changed the bits", u.job_id);
    }
}

/// Stage-level scheduling property: overlapped stage booking and
/// online re-booking move work through simulated time only — every
/// outcome of the staged engine is bit-identical to the per-plan batch
/// path, and the staged schedule itself is placement-invariant (a
/// different pool re-places and re-overlaps, the bits never move).
#[test]
fn staged_scheduling_is_bit_identical_to_sequential_booking() {
    let mut rng = StdRng::seed_from_u64(0x57a6ed);
    let jobs = power_flow_jobs(90, &mut rng);

    let mut pool_legacy = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    let legacy = solve_batch_with(&mut pool_legacy, &jobs, 1, DispatchPolicy::LeastLoaded);

    let mut pool_staged = DevicePool::new(vec![Gpu::v100(), Gpu::p100()]);
    let staged = solve_batch_staged(
        &mut pool_staged,
        &jobs,
        DispatchPolicy::ShortestExpectedCompletion,
        &MicrobatchConfig::default(),
        &StageSchedConfig::staged(),
    );
    assert_eq!(staged.outcomes.len(), legacy.outcomes.len());
    for (l, s) in legacy.outcomes.iter().zip(&staged.outcomes) {
        assert_eq!(l.job_id, s.job_id);
        assert_eq!(
            l.x, s.x,
            "job {}: staged booking changed the bits",
            l.job_id
        );
        assert_eq!(l.residual, s.residual);
        assert_eq!(l.corrections_run, s.corrections_run, "job {}", l.job_id);
    }

    // placement invariance: a different pool under the same staged
    // config overlaps and re-books differently but returns the same bits
    let mut other = DevicePool::homogeneous(&Gpu::a100(), 3);
    let again = solve_batch_staged(
        &mut other,
        &jobs,
        DispatchPolicy::LeastLoaded,
        &MicrobatchConfig::default(),
        &StageSchedConfig::staged(),
    );
    for (a, b) in staged.outcomes.iter().zip(&again.outcomes) {
        assert_eq!(a.x, b.x, "job {}: pool changed staged bits", a.job_id);
    }
}

/// Deterministic refund-heavy jobs: 30/90-digit targets whose
/// worst-case pass bookings overshoot what the measured residual needs.
fn refund_jobs(count: usize, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count as u64)
        .map(|id| {
            // device-bound shapes: refunds rewind compute-lane tails,
            // so the makespan only moves when the compute lane is the
            // critical path (small shapes are prep-bound and show the
            // ≤ property but not the strict win)
            let n = [96, 128, 192][id as usize % 3];
            let a = HostMat::<f64>::from_fn(n, n, |r, c| {
                let u: f64 = multidouble::random::rand_real(&mut rng);
                u + if r == c { 4.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n)
                .map(|_| multidouble::random::rand_real(&mut rng))
                .collect();
            Job::new(id, a, b, [30, 90, 90][id as usize % 3])
        })
        .collect()
}

/// Online-refund re-booking property (seeded mixes): with identical
/// worst-case bookings, handing refunds back online never worsens the
/// makespan, and every solution stays bit-identical. The batch engine
/// books every group up front, so a tail-only re-book can only trim
/// each device's final booking; the strict improvement on refund-heavy
/// mixes belongs to slide-left compaction, which moves queued
/// dispatches into the mid-schedule holes.
#[test]
fn online_rebooking_never_worsens_makespan() {
    let mut rebook = StageSchedConfig::overlap_only();
    rebook.rebook = true;
    let mut compact = rebook;
    compact.compact = true;
    let mut strict_wins = 0;
    for seed in 1u64..=2 {
        let jobs = refund_jobs(12, seed);
        let run = |sched: &StageSchedConfig| {
            let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::v100(), Gpu::p100()]);
            solve_batch_staged(
                &mut pool,
                &jobs,
                DispatchPolicy::ShortestExpectedCompletion,
                &MicrobatchConfig::off(),
                sched,
            )
        };
        let post = run(&StageSchedConfig::overlap_only());
        let re = run(&rebook);
        assert!(
            re.makespan_ms <= post.makespan_ms + 1e-9,
            "seed {seed}: tail-only re-booking {:.2} ms worse than post-hoc {:.2} ms",
            re.makespan_ms,
            post.makespan_ms
        );
        let comp = run(&compact);
        assert!(
            comp.makespan_ms <= re.makespan_ms + 1e-9,
            "seed {seed}: compaction {:.2} ms worse than tail-only {:.2} ms",
            comp.makespan_ms,
            re.makespan_ms
        );
        if comp.makespan_ms < post.makespan_ms - 1e-9 {
            strict_wins += 1;
        }
        for (a, b) in post.outcomes.iter().zip(&re.outcomes) {
            assert_eq!(a.x, b.x, "seed {seed}: re-booking changed bits");
        }
        for (a, b) in post.outcomes.iter().zip(&comp.outcomes) {
            assert_eq!(a.x, b.x, "seed {seed}: compaction changed bits");
        }
        // refunds actually flowed, or the property is vacuous
        assert!(post.outcomes.iter().any(|o| o.refunded_ms > 0.0));
    }
    assert!(strict_wins > 0, "compaction never strictly won");
}

/// A = H_u · D · H_v with geometric singular-value decay 1..10^-p:
/// condition number 10^p exactly, immune to the QR's column-scaling
/// equilibration — per-pass refinement gains genuinely shrink.
fn ill_conditioned(n: usize, p: f64, seed: u64) -> HostMat<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut u: Vec<f64> = (0..n)
        .map(|_| multidouble::random::rand_real::<f64, _>(&mut rng) - 0.5)
        .collect();
    let mut v: Vec<f64> = (0..n)
        .map(|_| multidouble::random::rand_real::<f64, _>(&mut rng) - 0.5)
        .collect();
    let nu = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nv = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    u.iter_mut().for_each(|x| *x /= nu);
    v.iter_mut().for_each(|x| *x /= nv);
    let d: Vec<f64> = (0..n)
        .map(|i| 10f64.powf(-p * i as f64 / (n as f64 - 1.0)))
        .collect();
    HostMat::<f64>::from_fn(n, n, |r, c| {
        let mut s = 0.0;
        for k in 0..n {
            let hu = if r == k { 1.0 } else { 0.0 } - 2.0 * u[r] * u[k];
            let hv = if k == c { 1.0 } else { 0.0 } - 2.0 * v[k] * v[c];
            s += hu * d[k] * hv;
        }
        s
    })
}

/// Pass extension certifies a stalled job: conditioning eats into the
/// per-pass digit gain, so the plan's booked passes end below target —
/// the legacy path returns under-target, while the staged engine
/// extends the booking pass by pass until the measured residual
/// certifies the target, reporting the extra booked time.
#[test]
fn stalled_job_extends_passes_to_reach_target() {
    let n = 32;
    let target = 29;
    let a = ill_conditioned(n, 4.0, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let b: Vec<f64> = (0..n)
        .map(|_| multidouble::random::rand_real(&mut rng))
        .collect();
    let jobs = vec![Job::new(0, a, b, target)];

    // legacy (no extension): the booked passes stall under target
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
    let legacy = solve_batch_with(&mut pool, &jobs, 1, DispatchPolicy::LeastLoaded);
    let l = &legacy.outcomes[0];
    assert!(
        l.achieved_digits < target as f64,
        "conditioning did not stall the job ({:.1} digits) — the test is vacuous",
        l.achieved_digits
    );
    assert_eq!(l.corrections_run, l.plan.corrections());

    // staged engine with extension: extra passes run (and are booked)
    // until the residual certifies the target
    let mut pool = DevicePool::homogeneous(&Gpu::v100(), 1);
    let staged = solve_batch_staged(
        &mut pool,
        &jobs,
        DispatchPolicy::LeastLoaded,
        &MicrobatchConfig::off(),
        &StageSchedConfig::staged(),
    );
    let s = &staged.outcomes[0];
    assert!(
        s.achieved_digits >= target as f64,
        "extension stopped at {:.1} digits, target {target}",
        s.achieved_digits
    );
    assert!(
        s.corrections_run > s.plan.corrections(),
        "no extra pass ran ({} <= plan {})",
        s.corrections_run,
        s.plan.corrections()
    );
    assert!(s.extended_ms > 0.0, "extension booked no time");
    // the extension extends this job's own interval on the schedule
    assert!(s.end_ms > legacy.outcomes[0].end_ms);
}

/// The planner chooses different tile configurations for different job
/// shapes (cost-model-driven autotuning, not a fixed default).
#[test]
fn planner_adapts_tiling_to_shape() {
    let planner = Planner::new();
    let gpu = Gpu::v100();
    let configs: Vec<(usize, usize)> = [16usize, 96, 512]
        .iter()
        .map(|&n| {
            let p = planner.plan(&gpu, n, n, 25);
            let (_, tiles, tile_size) = p.factor();
            (tiles, tile_size)
        })
        .collect();
    let mut distinct = configs.clone();
    distinct.sort();
    distinct.dedup();
    assert!(
        distinct.len() >= 2,
        "one tiling {configs:?} for shapes 16/96/512"
    );
}

/// Refinement correctness property (seeded): over randomized
/// power-flow queues, every outcome — direct or refinement — certifies
/// at least its job's target digits, and refinement plans are actually
/// exercised somewhere in the mix.
#[test]
fn refinement_meets_every_digit_target() {
    let mut refined = 0usize;
    for seed in [0xf1a7u64, 0xf1a8, 0xf1a9] {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = power_flow_jobs(40, &mut rng);
        let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::a100()]);
        let report = solve_batch(&mut pool, &jobs);
        for (job, out) in jobs.iter().zip(&report.outcomes) {
            assert!(
                out.achieved_digits >= job.target_digits as f64,
                "seed {seed:#x} job {} ({}): {:.1} digits < target {}",
                job.id,
                out.plan.summary(),
                out.achieved_digits,
                job.target_digits
            );
            // the model's own digit prediction must also have covered it
            assert!(out.plan.predicted_digits >= job.target_digits);
            refined += usize::from(!out.plan.is_direct());
        }
    }
    assert!(
        refined > 0,
        "no refinement plan was ever chosen across the seeds — the property is vacuous"
    );
}

/// Forced refinement across every factor/solution rung pair: each
/// ladder combination must reach the solution rung's digits on a
/// well-conditioned system, not just the pairs the cost model happens
/// to pick.
#[test]
fn refinement_reaches_targets_on_every_ladder_pair() {
    let mut rng = StdRng::seed_from_u64(0x1adde);
    let jobs = power_flow_jobs(6, &mut rng);
    let planner = Planner::new();
    let gpu = Gpu::v100();
    for job in &jobs {
        for digits in [25, 50, 100] {
            let plan = planner.plan(&gpu, job.rows(), job.cols(), digits);
            let (x, residual) = solve_planned(&gpu, job, &plan);
            assert_eq!(x.precision(), plan.solution_precision());
            assert!(
                residual < 10f64.powi(-(digits as i32)),
                "job {} to {digits} digits via {}: residual {residual:e}",
                job.id,
                plan.summary()
            );
        }
    }
}

/// No silent behavior change for single-stage plans: a direct plan's
/// interpretation is bit-identical to the pre-refactor path — a plain
/// sequential `lstsq` at the plan's precision and tiling.
#[test]
fn direct_plans_are_bit_identical_to_plain_lstsq() {
    use multidouble_ls::matrix::vec_norm2;
    use multidouble_ls::md::{Dd, MdReal, Od, Qd};
    use multidouble_ls::pipeline::{ExecPlan, Precision, Solution};
    use multidouble_ls::sim::ExecMode;
    use multidouble_ls::solver::lstsq;

    fn reference<S: MdReal>(
        gpu: &Gpu,
        job: &multidouble_ls::pipeline::Job,
        plan: &ExecPlan,
    ) -> (Vec<S>, f64) {
        let a = multidouble_ls::matrix::HostMat::<S>::from_fn(job.rows(), job.cols(), |r, c| {
            S::from_f64(job.a.get(r, c))
        });
        let b: Vec<S> = job.b.iter().map(|&v| S::from_f64(v)).collect();
        let run = lstsq(gpu, &a, &b, &plan.options(ExecMode::Sequential));
        let r = a.residual(&run.x, &b).to_f64();
        let bn = vec_norm2(&b).to_f64();
        (run.x, if bn > 0.0 { r / bn } else { r })
    }

    let mut rng = StdRng::seed_from_u64(0xb17);
    let jobs = power_flow_jobs(12, &mut rng);
    let planner = Planner::new();
    for gpu in [Gpu::v100(), Gpu::p100()] {
        for job in &jobs {
            let plan = planner.plan_direct(&gpu, job.rows(), job.cols(), job.target_digits);
            assert!(plan.is_direct());
            let (x, residual) = solve_planned(&gpu, job, &plan);
            match (&x, plan.factor_precision()) {
                (Solution::D1(x), Precision::D1) => {
                    let (e, er) = reference::<f64>(&gpu, job, &plan);
                    assert_eq!(*x, e, "job {}: 1d bits changed", job.id);
                    assert_eq!(residual, er);
                }
                (Solution::D2(x), Precision::D2) => {
                    let (e, er) = reference::<Dd>(&gpu, job, &plan);
                    assert_eq!(*x, e, "job {}: 2d bits changed", job.id);
                    assert_eq!(residual, er);
                }
                (Solution::D4(x), Precision::D4) => {
                    let (e, er) = reference::<Qd>(&gpu, job, &plan);
                    assert_eq!(*x, e, "job {}: 4d bits changed", job.id);
                    assert_eq!(residual, er);
                }
                (Solution::D8(x), Precision::D8) => {
                    let (e, er) = reference::<Od>(&gpu, job, &plan);
                    assert_eq!(*x, e, "job {}: 8d bits changed", job.id);
                    assert_eq!(residual, er);
                }
                (s, p) => panic!(
                    "solution rung {:?} does not match plan rung {p:?}",
                    s.precision()
                ),
            }
        }
    }
}
