//! Integration tests of the batched multi-GPU solve pipeline.

use multidouble_ls::pipeline::{
    power_flow_jobs, schedule, solve_batch, solve_planned, DevicePool, JobShape, Planner,
};
use multidouble_ls::sim::Gpu;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The headline property: `solve_batch` over ≥ 1000 mixed-shape jobs is
/// *bit-identical* to solving each job sequentially with the same plan —
/// batching, device pooling and host worker threads change simulated
/// timing and real wall clock, never numerics.
#[test]
fn batch_matches_sequential_lstsq_on_1000_jobs() {
    let mut rng = StdRng::seed_from_u64(0xba7c4);
    let jobs = power_flow_jobs(1000, &mut rng);

    let mut pool = DevicePool::new(vec![Gpu::v100(), Gpu::v100(), Gpu::a100(), Gpu::p100()]);
    let report = solve_batch(&mut pool, &jobs);
    assert_eq!(report.outcomes.len(), 1000);

    let planner = Planner::new();
    for (job, out) in jobs.iter().zip(&report.outcomes) {
        // replan for the device the batch used: the plan must agree...
        let gpu = pool.gpu(out.device);
        let plan = planner.plan(gpu, job.rows(), job.cols(), job.target_digits);
        assert_eq!(plan, out.plan, "job {}: plans diverge", job.id);
        // ...and the sequential solve must reproduce the batch solution
        // exactly (same options => same arithmetic => same bits)
        let (x, residual) = solve_planned(gpu, job, &plan);
        assert_eq!(x, out.x, "job {}: batch and sequential bits differ", job.id);
        assert_eq!(residual, out.residual, "job {}", job.id);
        // accuracy targets hold on these well-conditioned consistent jobs
        let bound = 10f64.powi(-(job.target_digits as i32));
        assert!(
            out.residual < bound,
            "job {}: residual {:e} misses {} digits",
            job.id,
            out.residual,
            job.target_digits
        );
    }

    // mixed shapes really exercised the planner
    assert!(
        report.distinct_plans >= 4,
        "only {} distinct plans over 1000 mixed jobs",
        report.distinct_plans
    );
    // every device of the pool took a share of the load
    for s in &report.device_stats {
        assert!(s.solves > 0, "device {} ({}) idle", s.id, s.name);
    }
}

/// Scheduler invariant: the simulated makespan of a fixed job set
/// decreases monotonically as the pool grows.
#[test]
fn makespan_decreases_with_device_count() {
    let mut rng = StdRng::seed_from_u64(0x5c4ed);
    let shapes: Vec<JobShape> = power_flow_jobs(64, &mut rng)
        .iter()
        .map(JobShape::from)
        .collect();
    let planner = Planner::new();
    let mut prev = f64::INFINITY;
    for devices in 1..=6 {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), devices);
        schedule(&mut pool, &planner, &shapes);
        let makespan = pool.makespan_ms();
        assert!(
            makespan < prev,
            "{devices} devices: makespan {makespan:.3} ms not below {prev:.3} ms"
        );
        prev = makespan;
    }
}

/// Throughput scales near-linearly from one to two devices (the greedy
/// scheduler keeps both busy on a deep queue).
#[test]
fn two_devices_give_1_8x_throughput() {
    let mut rng = StdRng::seed_from_u64(0x7410);
    let shapes: Vec<JobShape> = power_flow_jobs(256, &mut rng)
        .iter()
        .map(JobShape::from)
        .collect();
    let planner = Planner::new();
    let throughput = |devices: usize| {
        let mut pool = DevicePool::homogeneous(&Gpu::v100(), devices);
        schedule(&mut pool, &planner, &shapes);
        pool.solves_per_sec()
    };
    let t1 = throughput(1);
    let t2 = throughput(2);
    assert!(
        t2 >= 1.8 * t1,
        "1→2 devices: {t1:.1} → {t2:.1} solves/s ({:.2}x)",
        t2 / t1
    );
}

/// The planner chooses different tile configurations for different job
/// shapes (cost-model-driven autotuning, not a fixed default).
#[test]
fn planner_adapts_tiling_to_shape() {
    let planner = Planner::new();
    let gpu = Gpu::v100();
    let configs: Vec<(usize, usize)> = [16usize, 96, 512]
        .iter()
        .map(|&n| {
            let p = planner.plan(&gpu, n, n, 25);
            (p.tiles, p.tile_size)
        })
        .collect();
    let mut distinct = configs.clone();
    distinct.sort();
    distinct.dedup();
    assert!(
        distinct.len() >= 2,
        "one tiling {configs:?} for shapes 16/96/512"
    );
}
