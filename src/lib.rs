//! # multidouble-ls
//!
//! Least squares solving on (simulated) GPUs in multiple double precision —
//! a Rust reproduction of
//!
//! > Jan Verschelde, *Least Squares on GPUs in Multiple Double Precision*,
//! > IPDPS Workshops 2022 (arXiv:2110.08375).
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`md`] — multiple double arithmetic (`Dd`, `Qd`, `Od`, complex);
//! * [`sim`] — the GPU execution simulator (device models, kernels,
//!   roofline timing);
//! * [`matrix`] — staggered multiple double matrices and host reference
//!   linear algebra;
//! * [`backsub`] — Algorithm 1: tiled accelerated back substitution;
//! * [`qr`] — Algorithm 2: blocked accelerated Householder QR;
//! * [`solver`] — the least squares solver combining the two;
//! * [`pipeline`] — the batched multi-GPU solve service (cost-model
//!   planner, device pool, policy-driven scheduler, priority-aware
//!   `solve_batch`/`solve_stream`);
//! * [`obs`] — the observability layer: typed pipeline events,
//!   Chrome-trace export and latency/calibration metrics (attach a
//!   recorder via `pipeline::DevicePool::attach_observer`).
//!
//! ## Quickstart
//!
//! ```
//! use multidouble_ls::md::{MdScalar, Qd};
//! use multidouble_ls::sim::Gpu;
//! use multidouble_ls::solver::{lstsq, LstsqOptions};
//! use multidouble_ls::matrix::HostMat;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let n = 64;
//! let a = HostMat::<Qd>::random(n, n, &mut rng);
//! let x_true: Vec<Qd> = (0..n).map(|i| Qd::from_f64(1.0 + i as f64)).collect();
//! let b = a.matvec(&x_true);
//!
//! let gpu = Gpu::v100();
//! let out = lstsq(&gpu, &a, &b, &LstsqOptions { tiles: 4, tile_size: 16, ..Default::default() });
//! let r = a.residual(&out.x, &b);
//! assert!(r.to_f64() < 1e-55); // quad double accuracy
//! ```

pub use mdls_backsub as backsub;
pub use mdls_core as solver;
pub use mdls_matrix as matrix;
pub use mdls_qr as qr;
pub use multidouble as md;

/// The GPU simulator substrate.
pub use gpusim as sim;

/// The batched multi-GPU solve pipeline: cost-model planner, device
/// pool, policy-driven scheduler (`DispatchPolicy`), and the
/// `solve_batch` / `solve_stream` API with priority-aware streaming.
pub use mdls_pipeline as pipeline;

/// The observability layer: typed [`obs::Event`]s emitted from every
/// pipeline stage, an [`obs::Recorder`] sink, Chrome-trace export
/// ([`obs::trace`]) and metrics aggregation ([`obs::metrics`]).
/// Observation is provably inert: with no observer attached no event
/// is constructed, and an attached observer changes neither solution
/// bits nor simulated timing.
pub use mdls_obs as obs;
